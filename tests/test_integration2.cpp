// Second integration batch: corners the main suites don't reach —
// simulated-transport knobs, foreign-endian ingress at the server,
// quality over the compressed wire, server shutdown with open
// connections, and a mixed-wire stress run.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/client.h"
#include "http/server.h"
#include "net/tcp.h"
#include "pbio/encode.h"
#include "pbio/value_codec.h"
#include "qos/monitors.h"

namespace sbq::core {
namespace {

double benchmark_blackhole_ = 0.0;  // defeats optimizing away the burn loop

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

FormatPtr msg_format() {
  return FormatBuilder("m")
      .add_scalar("v", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

wsdl::ServiceDesc echo_service() {
  wsdl::ServiceDesc svc;
  svc.name = "Echo";
  svc.operations.push_back(wsdl::OperationDesc{"echo", msg_format(), msg_format()});
  return svc;
}

struct SimEnv {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime{format_server, clock};

  SimEnv() {
    runtime.register_operation("echo", msg_format(), msg_format(),
                               [](const Value& v) { return v; });
  }
};

TEST(SimTransportKnobs, PerCallSetupChargesFixedCost) {
  SimEnv env;
  net::LinkConfig link = net::lan_100mbps();
  SimLinkTransport transport(env.runtime, net::LinkModel(link), env.clock);
  transport.set_charge_server_cpu(false);
  ClientStub client(transport, WireFormat::kBinary, echo_service(),
                    env.format_server, env.clock);
  const Value msg = Value::record({{"v", 1}, {"data", std::string(100, 'x')}});

  client.call("echo", msg);
  const std::uint64_t base = env.clock->now_us();

  transport.set_per_call_setup_us(5000);
  client.call("echo", msg);
  const std::uint64_t with_setup = env.clock->now_us() - base;
  EXPECT_GE(with_setup, 5000u + 2 * link.latency_us);
  EXPECT_LT(with_setup, 5000u + base + 1000u);
}

TEST(SimTransportKnobs, CpuScaleMultipliesServerTime) {
  SimEnv env;
  // A handler that burns measurable real CPU.
  env.runtime.register_operation(
      "burn", msg_format(), msg_format(), [](const Value& v) {
        // sqrt chain: not constant-foldable, costs real milliseconds.
        double acc = 1.0;
        for (int i = 0; i < 3000000; ++i) acc += std::sqrt(acc + i);
        benchmark_blackhole_ = acc;
        return v;
      });
  wsdl::ServiceDesc svc = echo_service();
  svc.operations.push_back(wsdl::OperationDesc{"burn", msg_format(), msg_format()});

  auto run_with_scale = [&](double scale) {
    SimLinkTransport transport(env.runtime, net::LinkModel(net::lan_100mbps()),
                               env.clock);
    transport.set_cpu_scale(scale);
    ClientStub client(transport, WireFormat::kBinary, svc, env.format_server,
                      env.clock);
    const std::uint64_t start = env.clock->now_us();
    client.call("burn", Value::record({{"v", 1}, {"data", std::string{}}}));
    return env.clock->now_us() - start;
  };

  const auto t1 = run_with_scale(1.0);
  const auto t10 = run_with_scale(10.0);
  // Scaled run must be several times longer (tolerate scheduler noise).
  EXPECT_GT(static_cast<double>(t10), 3.0 * static_cast<double>(t1));
}

TEST(ForeignEndianIngress, ServerDecodesBigEndianClientMessage) {
  // Hand-build a SOAP-bin request whose PBIO payload uses the non-host
  // byte order, simulating the paper's SPARC peer.
  SimEnv env;
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Value params = Value::record({{"v", 77}, {"data", std::string("abc")}});
  // The sender must announce its format (first-message registration).
  env.format_server->register_format(msg_format());
  const Bytes pbio_message = pbio::encode_value_message(params, *msg_format(), foreign);

  BinEnvelope envelope;
  envelope.operation = "echo";
  envelope.message_type = "m";
  envelope.timestamp_us = 42;

  http::Request request;
  request.method = "POST";
  request.headers.set("Content-Type", std::string(kContentTypePbio));
  request.body = encode_bin_message(envelope, BytesView{pbio_message});

  const http::Response response = env.runtime.handle(request);
  ASSERT_EQ(response.status, 200) << response.body_string();
  const DecodedBinMessage out = decode_bin_message(response.body_view());
  EXPECT_EQ(out.envelope.echoed_timestamp_us, 42u);
  ByteReader reader(out.pbio_message);
  const pbio::WireHeader header = pbio::read_header(reader);
  const Value result = pbio::decode_value_payload(
      reader.read_view(header.payload_length), header.sender_order, *msg_format());
  EXPECT_EQ(result.field("v").as_i64(), 77);
  EXPECT_EQ(result.field("data").as_string(), "abc");
}

TEST(CompressedWireQuality, ReductionWorksOverLzWire) {
  SimEnv env;
  auto small = FormatBuilder("m_small")
                   .add_scalar("v", TypeKind::kInt32)
                   .add_var_array("data", TypeKind::kChar)
                   .build();
  auto qm = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("0 1000 - m\n1000 inf - m_small\n"), 1);
  qm->register_message_type("m", msg_format());
  qm->register_message_type(
      "m_small", small,
      [](const Value& full, const pbio::FormatDesc& target, const qos::AttributeMap&) {
        Value out = pbio::project_value(full, target);
        out.set_field("data", Value{full.field("data").as_string().substr(0, 2)});
        return out;
      });
  env.runtime.set_quality_manager(qm);

  LoopbackTransport transport(env.runtime);
  ClientStub client(transport, WireFormat::kCompressedXml, echo_service(),
                    env.format_server, env.clock);
  auto client_qm = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("0 1000 - m\n1000 inf - m_small\n"), 1);
  client_qm->register_message_type("m", msg_format());
  client_qm->register_message_type("m_small", small);
  client.set_quality_manager(client_qm);

  // Degrade: the client's reported RTT drives the server to m_small.
  client_qm->observe_rtt(50000.0);
  const Value result = client.call(
      "echo", Value::record({{"v", 3}, {"data", std::string("abcdefgh")}}));
  EXPECT_EQ(client.last_response_type(), "m_small");
  EXPECT_EQ(result.field("data").as_string(), "ab");
  EXPECT_EQ(result.field("v").as_i64(), 3);
}

TEST(ServerShutdown, ForceClosesIdleConnections) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("echo", msg_format(), msg_format(),
                             [](const Value& v) { return v; });
  auto server = std::make_unique<http::Server>(
      0, [&](const http::Request& r) { return runtime.handle(r); });

  // A client connects, makes one call, then keeps the connection open.
  auto stream = net::TcpStream::connect("127.0.0.1", server->port());
  HttpTransport transport(*stream);
  ClientStub client(transport, WireFormat::kBinary, echo_service(), format_server,
                    clock);
  client.call("echo", Value::record({{"v", 1}, {"data", std::string("x")}}));

  // Shutdown must not hang on the worker blocked reading from this client.
  server->shutdown();
  SUCCEED();
}

TEST(Stress, MixedWireFormatsSequential) {
  SimEnv env;
  LoopbackTransport transport(env.runtime);
  std::vector<std::unique_ptr<ClientStub>> clients;
  for (const auto wire : {WireFormat::kBinary, WireFormat::kXml,
                          WireFormat::kCompressedXml}) {
    clients.push_back(std::make_unique<ClientStub>(
        transport, wire, echo_service(), env.format_server, env.clock));
  }
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    auto& client = clients[rng.next_below(clients.size())];
    const std::string blob(rng.next_below(500), 'b');
    const Value msg = Value::record({{"v", i}, {"data", blob}});
    const Value result = client->call("echo", msg);
    ASSERT_EQ(result.field("v").as_i64(), i);
    ASSERT_EQ(result.field("data").as_string().size(), blob.size());
  }
  EXPECT_EQ(env.runtime.stats().calls, 300u);
}

TEST(MonitorsIntegration, MarshalCostFromLiveRuntime) {
  SimEnv env;
  LoopbackTransport transport(env.runtime);
  ClientStub client(transport, WireFormat::kBinary, echo_service(),
                    env.format_server, env.clock);

  qos::MonitorSet monitors;
  monitors.add(std::make_unique<qos::MarshalCostMonitor>(
      [&] { return env.runtime.stats(); }));
  qos::QualityManager qm(qos::QualityFile::parse("attribute marshal_cost_us\n"
                                                 "0 inf - m\n"),
                         1);
  qm.register_message_type("m", msg_format());

  for (int i = 0; i < 5; ++i) {
    client.call("echo",
                Value::record({{"v", i}, {"data", std::string(20000, 'm')}}));
    monitors.poll(qm);
  }
  // Five 20 KB marshals must register a nonzero smoothed cost.
  EXPECT_GT(qm.attribute("marshal_cost_us"), 0.0);
}

}  // namespace
}  // namespace sbq::core
