// sbqlint analyzer-library tests: every rule gets a violating snippet, a
// clean variant, and a pragma-suppressed variant, fed through
// analyze_source under synthetic repo paths (rule scopes key off the
// path). The final test runs the real repository through analyze_tree and
// asserts it lints clean — the machine-checked form of the acceptance
// criterion "all pre-existing violations fixed or explicitly pragma'd".
#include "sbqlint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sbq::lint {
namespace {

std::vector<Finding> lint(const std::string& path, const std::string& src) {
  return analyze_source(path, src, default_config());
}

/// All findings for one rule (ignores the others).
std::vector<Finding> lint_rule(const std::string& path, const std::string& src,
                               const std::string& rule) {
  std::vector<Finding> out;
  for (Finding& f : lint(path, src)) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------- //
// layering
// ---------------------------------------------------------------------- //

TEST(LintLayering, UpwardIncludeIsFlagged) {
  const auto findings = lint_rule("src/pbio/format.cpp",
                                  "#include \"http/client.h\"\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/pbio/format.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("http/client.h"), std::string::npos);
}

TEST(LintLayering, DagEdgesAndSelfIncludesAreClean) {
  EXPECT_TRUE(lint("src/pbio/format.cpp",
                   "#include \"common/bytes.h\"\n"
                   "#include \"pbio/format.h\"\n")
                  .empty());
  EXPECT_TRUE(lint("src/core/client.cpp",
                   "#include \"qos/manager.h\"\n"
                   "#include \"http/client.h\"\n")
                  .empty());
}

TEST(LintLayering, QosMayNotIncludeCore) {
  // The exact leak this PR repaired: qos/monitors.h included core/stats.h.
  const auto findings = lint_rule("src/qos/monitors.h",
                                  "#include \"core/stats.h\"\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
}

TEST(LintLayering, SystemHeadersAndNonSubsystemIncludesIgnored) {
  EXPECT_TRUE(lint("src/pbio/format.cpp",
                   "#include <chrono_like_header>\n"
                   "#include \"generated_stubs.h\"\n")
                  .empty());
}

TEST(LintLayering, ToolsAndTestsComposeFreely) {
  EXPECT_TRUE(lint("tools/soapcall.cpp", "#include \"core/client.h\"\n").empty());
  EXPECT_TRUE(lint("tests/test_core.cpp", "#include \"core/client.h\"\n").empty());
}

TEST(LintLayering, UnknownSubsystemIsFlagged) {
  const auto findings =
      lint_rule("src/newthing/x.cpp", "int x;\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("unknown subsystem"), std::string::npos);
}

// ---------------------------------------------------------------------- //
// no-raw-throw
// ---------------------------------------------------------------------- //

TEST(LintThrow, RawStdThrowIsFlagged) {
  const auto findings = lint_rule(
      "src/xml/dom.cpp", "void f() { throw std::runtime_error(\"x\"); }\n",
      "no-raw-throw");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("std::runtime_error"), std::string::npos);
}

TEST(LintThrow, SbqErrorConstructionsAreClean) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() {\n"
                        "  throw ParseError(\"a\");\n"
                        "  throw sbq::CodecError(\"b\");\n"
                        "  throw xml::XmlError(\"c\", 1, 2);\n"
                        "  throw OverloadError{\"d\", 5};\n"
                        "}\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, BareRethrowIsClean) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() { try { g(); } catch (const Error&) { throw; } }\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, ThrowingAVariableIsFlagged) {
  EXPECT_EQ(lint_rule("src/xml/dom.cpp", "void f(Error e) { throw e; }\n",
                      "no-raw-throw")
                .size(),
            1u);
}

TEST(LintThrow, TestsMayThrowAnything) {
  EXPECT_TRUE(lint_rule("tests/test_edge.cpp",
                        "void f() { throw std::runtime_error(\"fixture\"); }\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "// sbqlint:allow(no-raw-throw): interop shim\n"
                        "void f() { throw std::runtime_error(\"x\"); }\n",
                        "no-raw-throw")
                  .empty());
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() { throw std::runtime_error(\"x\"); }"
                        "  // sbqlint:allow(no-raw-throw): interop shim\n",
                        "no-raw-throw")
                  .empty());
}

// ---------------------------------------------------------------------- //
// no-swallow
// ---------------------------------------------------------------------- //

TEST(LintSwallow, SilentCatchAllIsFlagged) {
  const auto findings = lint_rule(
      "src/http/server.cpp", "void f() { try { g(); } catch (...) {} }\n",
      "no-swallow");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintSwallow, RethrowAndConvertAreClean) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() { try { g(); } catch (...) { throw; } }\n",
                        "no-swallow")
                  .empty());
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() {\n"
                        "  try { g(); } catch (...) { throw Error(\"wrapped\"); }\n"
                        "}\n",
                        "no-swallow")
                  .empty());
}

TEST(LintSwallow, TypedCatchesAreNotCovered) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() { try { g(); } catch (const Error&) {} }\n",
                        "no-swallow")
                  .empty());
}

TEST(LintSwallow, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() {\n"
                        "  try { g(); }\n"
                        "  // sbqlint:allow(no-swallow): converted to a 500\n"
                        "  catch (...) { respond_500(); }\n"
                        "}\n",
                        "no-swallow")
                  .empty());
}

// ---------------------------------------------------------------------- //
// cast-confinement
// ---------------------------------------------------------------------- //

TEST(LintCast, ReinterpretCastOutsideAllowlistIsFlagged) {
  const auto findings = lint_rule(
      "src/qos/manager.cpp",
      "void f(const char* p) { auto b = reinterpret_cast<const int*>(p); }\n",
      "cast-confinement");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("reinterpret_cast"), std::string::npos);
}

TEST(LintCast, MemcpyOutsideAllowlistIsFlagged) {
  EXPECT_EQ(lint_rule("src/soap/codec.cpp",
                      "void f(void* d, const void* s) { memcpy(d, s, 4); }\n",
                      "cast-confinement")
                .size(),
            1u);
  EXPECT_EQ(lint_rule("src/soap/codec.cpp",
                      "void f(void* d, const void* s) { std::memcpy(d, s, 4); }\n",
                      "cast-confinement")
                .size(),
            1u);
}

TEST(LintCast, AllowlistedCodecFilesMayCast) {
  EXPECT_TRUE(lint_rule("src/common/bytes.h",
                        "auto f(const char* p) { return reinterpret_cast<const "
                        "unsigned char*>(p); }\n",
                        "cast-confinement")
                  .empty());
  EXPECT_TRUE(lint_rule("src/pbio/encode.cpp",
                        "void f(void* d, const void* s) { std::memcpy(d, s, 8); }\n",
                        "cast-confinement")
                  .empty());
}

TEST(LintCast, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/qos/manager.cpp",
                        "// sbqlint:allow(cast-confinement): FFI boundary\n"
                        "void f(void* d, const void* s) { memcpy(d, s, 4); }\n",
                        "cast-confinement")
                  .empty());
}

// ---------------------------------------------------------------------- //
// clock-discipline
// ---------------------------------------------------------------------- //

TEST(LintClock, SystemClockIsFlaggedEverywhere) {
  for (const char* path :
       {"src/net/link.cpp", "tools/soapcall.cpp", "tests/test_qos.cpp",
        "bench/bench_fig8_imaging.cpp"}) {
    EXPECT_EQ(lint_rule(path,
                        "auto t = std::chrono::system_clock::now();\n",
                        "clock-discipline")
                  .size(),
              1u)
        << path;
  }
}

TEST(LintClock, TimeCallAndGettimeofdayAreFlagged) {
  EXPECT_EQ(lint_rule("src/qos/rtt.cpp", "auto t = time(nullptr);\n",
                      "clock-discipline")
                .size(),
            1u);
  EXPECT_EQ(lint_rule("src/qos/rtt.cpp",
                      "void f(timeval* tv) { gettimeofday(tv, nullptr); }\n",
                      "clock-discipline")
                .size(),
            1u);
}

TEST(LintClock, CallPositionOnlyForCommonNames) {
  // `time` and `clock` are everyday identifiers; only calls are flagged.
  EXPECT_TRUE(lint_rule("src/qos/rtt.cpp",
                        "struct S { double time; };\n"
                        "void f(S s, double clock) { s.time = clock; }\n",
                        "clock-discipline")
                  .empty());
}

TEST(LintClock, ClockHeaderIsExempt) {
  EXPECT_TRUE(lint_rule("src/common/clock.h",
                        "auto n = std::chrono::steady_clock::now();\n",
                        "clock-discipline")
                  .empty());
}

TEST(LintClock, ChronoDurationsAreFine) {
  EXPECT_TRUE(lint_rule("src/net/pipe.cpp",
                        "void f() { wait_for(std::chrono::microseconds(5)); }\n",
                        "clock-discipline")
                  .empty());
}

// ---------------------------------------------------------------------- //
// sleep-discipline
// ---------------------------------------------------------------------- //

TEST(LintSleep, DirectSleepInProductCodeIsFlagged) {
  for (const char* path : {"src/core/resilience.cpp", "tools/soapcall.cpp"}) {
    EXPECT_EQ(
        lint_rule(path,
                  "void f() { std::this_thread::sleep_for(delay); }\n",
                  "sleep-discipline")
            .size(),
        1u)
        << path;
    EXPECT_EQ(lint_rule(path, "void f() { usleep(50); }\n",
                        "sleep-discipline")
                  .size(),
              1u)
        << path;
  }
}

TEST(LintSleep, TestsAndBenchMaySleep) {
  for (const char* path :
       {"tests/test_resilience.cpp", "bench/bench_overload.cpp"}) {
    EXPECT_TRUE(
        lint_rule(path,
                  "void f() { std::this_thread::sleep_for(delay); }\n",
                  "sleep-discipline")
            .empty())
        << path;
  }
}

TEST(LintSleep, DelayPrimitivesAreAllowlisted) {
  EXPECT_TRUE(
      lint_rule("src/core/client.cpp",
                "void f() { std::this_thread::sleep_for(delay); }\n",
                "sleep-discipline")
          .empty());
}

TEST(LintSleep, CallPositionOnly) {
  // `sleep` as a plain name (a field, a parameter) is not a violation.
  EXPECT_TRUE(lint_rule("src/core/resilience.cpp",
                        "struct S { int sleep; };\n"
                        "int f(S s) { return s.sleep; }\n",
                        "sleep-discipline")
                  .empty());
}

TEST(LintSleep, PragmaSuppresses) {
  EXPECT_TRUE(
      lint_rule("src/core/resilience.cpp",
                "// sbqlint:allow(sleep-discipline)\n"
                "void f() { std::this_thread::sleep_for(delay); }\n",
                "sleep-discipline")
          .empty());
}

// ---------------------------------------------------------------------- //
// Tokenizer-awareness: literals, comments, raw strings, pragma parsing.
// ---------------------------------------------------------------------- //

TEST(LintTokenizer, StringsAndCommentsNeverFire) {
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "// memcpy reinterpret_cast system_clock throw std::x(\n"
                   "/* gettimeofday(now) catch (...) { } */\n"
                   "const char* s = \"memcpy(a, b, 4) system_clock\";\n"
                   "const char* r = R\"(reinterpret_cast<int*>(p) time( )\";\n")
                  .empty());
}

TEST(LintTokenizer, RawStringDelimitersAreHonored) {
  // The banned token sits after a fake `)"` inside the delimited raw
  // string; a naive scanner would resume tokenizing too early.
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "const char* r = R\"sbq( )\" memcpy(a, b, 4) )sbq\";\n")
                  .empty());
}

TEST(LintTokenizer, LineNumbersSurviveMultilineConstructs) {
  const auto findings = lint_rule("src/qos/manager.cpp",
                                  "/* comment\n"
                                  "   spanning\n"
                                  "   lines */\n"
                                  "const char* s = \"str\";\n"
                                  "void f(void* d) { memcpy(d, d, 1); }\n",
                                  "cast-confinement");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintTokenizer, PragmaWithMultipleRules) {
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "// sbqlint:allow(cast-confinement, clock-discipline): port shim\n"
                   "void f(void* d) { memcpy(d, d, 1); gettimeofday(0, 0); }\n")
                  .empty());
}

TEST(LintTokenizer, PragmaForOneRuleDoesNotSuppressAnother) {
  const auto findings = lint("src/qos/manager.cpp",
                             "// sbqlint:allow(cast-confinement): shim\n"
                             "void f(void* d) { memcpy(d, d, 1); gettimeofday(0, 0); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "clock-discipline");
}

// ---------------------------------------------------------------------- //
// Output format and metadata.
// ---------------------------------------------------------------------- //

TEST(LintOutput, FormatIsFileLineRuleMessage) {
  const Finding finding{"src/a/b.cpp", 42, "layering", "bad include"};
  EXPECT_EQ(format_finding(finding), "src/a/b.cpp:42: layering: bad include");
}

TEST(LintOutput, SixRulesAreRegistered) {
  const auto infos = rules();
  ASSERT_EQ(infos.size(), 6u);
  EXPECT_EQ(infos[0].name, "layering");
  EXPECT_EQ(infos[1].name, "no-raw-throw");
  EXPECT_EQ(infos[2].name, "no-swallow");
  EXPECT_EQ(infos[3].name, "cast-confinement");
  EXPECT_EQ(infos[4].name, "clock-discipline");
  EXPECT_EQ(infos[5].name, "sleep-discipline");
}

// ---------------------------------------------------------------------- //
// End-to-end: the repository itself must lint clean.
// ---------------------------------------------------------------------- //

TEST(LintRepo, WholeRepositoryIsClean) {
  const auto findings = analyze_tree(SBQ_SOURCE_ROOT, default_config());
  for (const Finding& finding : findings) {
    ADD_FAILURE() << format_finding(finding);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace sbq::lint
