// sbqlint analyzer-library tests: every rule gets a violating snippet, a
// clean variant, and a pragma-suppressed variant, fed through
// analyze_source under synthetic repo paths (rule scopes key off the
// path). The final test runs the real repository through analyze_tree and
// asserts it lints clean — the machine-checked form of the acceptance
// criterion "all pre-existing violations fixed or explicitly pragma'd".
#include "sbqlint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sbq::lint {
namespace {

std::vector<Finding> lint(const std::string& path, const std::string& src) {
  return analyze_source(path, src, default_config());
}

/// All findings for one rule (ignores the others).
std::vector<Finding> lint_rule(const std::string& path, const std::string& src,
                               const std::string& rule) {
  std::vector<Finding> out;
  for (Finding& f : lint(path, src)) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------- //
// layering
// ---------------------------------------------------------------------- //

TEST(LintLayering, UpwardIncludeIsFlagged) {
  const auto findings = lint_rule("src/pbio/format.cpp",
                                  "#include \"http/client.h\"\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/pbio/format.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("http/client.h"), std::string::npos);
}

TEST(LintLayering, DagEdgesAndSelfIncludesAreClean) {
  EXPECT_TRUE(lint("src/pbio/format.cpp",
                   "#include \"common/bytes.h\"\n"
                   "#include \"pbio/format.h\"\n")
                  .empty());
  EXPECT_TRUE(lint("src/core/client.cpp",
                   "#include \"qos/manager.h\"\n"
                   "#include \"http/client.h\"\n")
                  .empty());
}

TEST(LintLayering, QosMayNotIncludeCore) {
  // The exact leak this PR repaired: qos/monitors.h included core/stats.h.
  const auto findings = lint_rule("src/qos/monitors.h",
                                  "#include \"core/stats.h\"\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
}

TEST(LintLayering, SystemHeadersAndNonSubsystemIncludesIgnored) {
  EXPECT_TRUE(lint("src/pbio/format.cpp",
                   "#include <chrono_like_header>\n"
                   "#include \"generated_stubs.h\"\n")
                  .empty());
}

TEST(LintLayering, ToolsAndTestsComposeFreely) {
  EXPECT_TRUE(lint("tools/soapcall.cpp", "#include \"core/client.h\"\n").empty());
  EXPECT_TRUE(lint("tests/test_core.cpp", "#include \"core/client.h\"\n").empty());
}

TEST(LintLayering, UnknownSubsystemIsFlagged) {
  const auto findings =
      lint_rule("src/newthing/x.cpp", "int x;\n", "layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("unknown subsystem"), std::string::npos);
}

// ---------------------------------------------------------------------- //
// no-raw-throw
// ---------------------------------------------------------------------- //

TEST(LintThrow, RawStdThrowIsFlagged) {
  const auto findings = lint_rule(
      "src/xml/dom.cpp", "void f() { throw std::runtime_error(\"x\"); }\n",
      "no-raw-throw");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("std::runtime_error"), std::string::npos);
}

TEST(LintThrow, SbqErrorConstructionsAreClean) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() {\n"
                        "  throw ParseError(\"a\");\n"
                        "  throw sbq::CodecError(\"b\");\n"
                        "  throw xml::XmlError(\"c\", 1, 2);\n"
                        "  throw OverloadError{\"d\", 5};\n"
                        "}\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, BareRethrowIsClean) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() { try { g(); } catch (const Error&) { throw; } }\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, ThrowingAVariableIsFlagged) {
  EXPECT_EQ(lint_rule("src/xml/dom.cpp", "void f(Error e) { throw e; }\n",
                      "no-raw-throw")
                .size(),
            1u);
}

TEST(LintThrow, TestsMayThrowAnything) {
  EXPECT_TRUE(lint_rule("tests/test_edge.cpp",
                        "void f() { throw std::runtime_error(\"fixture\"); }\n",
                        "no-raw-throw")
                  .empty());
}

TEST(LintThrow, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "// sbqlint:allow(no-raw-throw): interop shim\n"
                        "void f() { throw std::runtime_error(\"x\"); }\n",
                        "no-raw-throw")
                  .empty());
  EXPECT_TRUE(lint_rule("src/xml/dom.cpp",
                        "void f() { throw std::runtime_error(\"x\"); }"
                        "  // sbqlint:allow(no-raw-throw): interop shim\n",
                        "no-raw-throw")
                  .empty());
}

// ---------------------------------------------------------------------- //
// no-swallow
// ---------------------------------------------------------------------- //

TEST(LintSwallow, SilentCatchAllIsFlagged) {
  const auto findings = lint_rule(
      "src/http/server.cpp", "void f() { try { g(); } catch (...) {} }\n",
      "no-swallow");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintSwallow, RethrowAndConvertAreClean) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() { try { g(); } catch (...) { throw; } }\n",
                        "no-swallow")
                  .empty());
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() {\n"
                        "  try { g(); } catch (...) { throw Error(\"wrapped\"); }\n"
                        "}\n",
                        "no-swallow")
                  .empty());
}

TEST(LintSwallow, TypedCatchesAreNotCovered) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() { try { g(); } catch (const Error&) {} }\n",
                        "no-swallow")
                  .empty());
}

TEST(LintSwallow, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/http/server.cpp",
                        "void f() {\n"
                        "  try { g(); }\n"
                        "  // sbqlint:allow(no-swallow): converted to a 500\n"
                        "  catch (...) { respond_500(); }\n"
                        "}\n",
                        "no-swallow")
                  .empty());
}

// ---------------------------------------------------------------------- //
// cast-confinement
// ---------------------------------------------------------------------- //

TEST(LintCast, ReinterpretCastOutsideAllowlistIsFlagged) {
  const auto findings = lint_rule(
      "src/qos/manager.cpp",
      "void f(const char* p) { auto b = reinterpret_cast<const int*>(p); }\n",
      "cast-confinement");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("reinterpret_cast"), std::string::npos);
}

TEST(LintCast, MemcpyOutsideAllowlistIsFlagged) {
  EXPECT_EQ(lint_rule("src/soap/codec.cpp",
                      "void f(void* d, const void* s) { memcpy(d, s, 4); }\n",
                      "cast-confinement")
                .size(),
            1u);
  EXPECT_EQ(lint_rule("src/soap/codec.cpp",
                      "void f(void* d, const void* s) { std::memcpy(d, s, 4); }\n",
                      "cast-confinement")
                .size(),
            1u);
}

TEST(LintCast, AllowlistedCodecFilesMayCast) {
  EXPECT_TRUE(lint_rule("src/common/bytes.h",
                        "auto f(const char* p) { return reinterpret_cast<const "
                        "unsigned char*>(p); }\n",
                        "cast-confinement")
                  .empty());
  EXPECT_TRUE(lint_rule("src/pbio/encode.cpp",
                        "void f(void* d, const void* s) { std::memcpy(d, s, 8); }\n",
                        "cast-confinement")
                  .empty());
}

TEST(LintCast, PragmaSuppresses) {
  EXPECT_TRUE(lint_rule("src/qos/manager.cpp",
                        "// sbqlint:allow(cast-confinement): FFI boundary\n"
                        "void f(void* d, const void* s) { memcpy(d, s, 4); }\n",
                        "cast-confinement")
                  .empty());
}

// ---------------------------------------------------------------------- //
// clock-discipline
// ---------------------------------------------------------------------- //

TEST(LintClock, SystemClockIsFlaggedEverywhere) {
  for (const char* path :
       {"src/net/link.cpp", "tools/soapcall.cpp", "tests/test_qos.cpp",
        "bench/bench_fig8_imaging.cpp"}) {
    EXPECT_EQ(lint_rule(path,
                        "auto t = std::chrono::system_clock::now();\n",
                        "clock-discipline")
                  .size(),
              1u)
        << path;
  }
}

TEST(LintClock, TimeCallAndGettimeofdayAreFlagged) {
  EXPECT_EQ(lint_rule("src/qos/rtt.cpp", "auto t = time(nullptr);\n",
                      "clock-discipline")
                .size(),
            1u);
  EXPECT_EQ(lint_rule("src/qos/rtt.cpp",
                      "void f(timeval* tv) { gettimeofday(tv, nullptr); }\n",
                      "clock-discipline")
                .size(),
            1u);
}

TEST(LintClock, CallPositionOnlyForCommonNames) {
  // `time` and `clock` are everyday identifiers; only calls are flagged.
  EXPECT_TRUE(lint_rule("src/qos/rtt.cpp",
                        "struct S { double time; };\n"
                        "void f(S s, double clock) { s.time = clock; }\n",
                        "clock-discipline")
                  .empty());
}

TEST(LintClock, ClockHeaderIsExempt) {
  EXPECT_TRUE(lint_rule("src/common/clock.h",
                        "auto n = std::chrono::steady_clock::now();\n",
                        "clock-discipline")
                  .empty());
}

TEST(LintClock, ChronoDurationsAreFine) {
  EXPECT_TRUE(lint_rule("src/net/pipe.cpp",
                        "void f() { wait_for(std::chrono::microseconds(5)); }\n",
                        "clock-discipline")
                  .empty());
}

// ---------------------------------------------------------------------- //
// sleep-discipline
// ---------------------------------------------------------------------- //

TEST(LintSleep, DirectSleepInProductCodeIsFlagged) {
  for (const char* path : {"src/core/resilience.cpp", "tools/soapcall.cpp"}) {
    EXPECT_EQ(
        lint_rule(path,
                  "void f() { std::this_thread::sleep_for(delay); }\n",
                  "sleep-discipline")
            .size(),
        1u)
        << path;
    EXPECT_EQ(lint_rule(path, "void f() { usleep(50); }\n",
                        "sleep-discipline")
                  .size(),
              1u)
        << path;
  }
}

TEST(LintSleep, TestsAndBenchMaySleep) {
  for (const char* path :
       {"tests/test_resilience.cpp", "bench/bench_overload.cpp"}) {
    EXPECT_TRUE(
        lint_rule(path,
                  "void f() { std::this_thread::sleep_for(delay); }\n",
                  "sleep-discipline")
            .empty())
        << path;
  }
}

TEST(LintSleep, DelayPrimitivesAreAllowlisted) {
  EXPECT_TRUE(
      lint_rule("src/core/client.cpp",
                "void f() { std::this_thread::sleep_for(delay); }\n",
                "sleep-discipline")
          .empty());
}

TEST(LintSleep, CallPositionOnly) {
  // `sleep` as a plain name (a field, a parameter) is not a violation.
  EXPECT_TRUE(lint_rule("src/core/resilience.cpp",
                        "struct S { int sleep; };\n"
                        "int f(S s) { return s.sleep; }\n",
                        "sleep-discipline")
                  .empty());
}

TEST(LintSleep, PragmaSuppresses) {
  EXPECT_TRUE(
      lint_rule("src/core/resilience.cpp",
                "// sbqlint:allow(sleep-discipline)\n"
                "void f() { std::this_thread::sleep_for(delay); }\n",
                "sleep-discipline")
          .empty());
}

// ---------------------------------------------------------------------- //
// Tokenizer-awareness: literals, comments, raw strings, pragma parsing.
// ---------------------------------------------------------------------- //

TEST(LintTokenizer, StringsAndCommentsNeverFire) {
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "// memcpy reinterpret_cast system_clock throw std::x(\n"
                   "/* gettimeofday(now) catch (...) { } */\n"
                   "const char* s = \"memcpy(a, b, 4) system_clock\";\n"
                   "const char* r = R\"(reinterpret_cast<int*>(p) time( )\";\n")
                  .empty());
}

TEST(LintTokenizer, RawStringDelimitersAreHonored) {
  // The banned token sits after a fake `)"` inside the delimited raw
  // string; a naive scanner would resume tokenizing too early.
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "const char* r = R\"sbq( )\" memcpy(a, b, 4) )sbq\";\n")
                  .empty());
}

TEST(LintTokenizer, LineNumbersSurviveMultilineConstructs) {
  const auto findings = lint_rule("src/qos/manager.cpp",
                                  "/* comment\n"
                                  "   spanning\n"
                                  "   lines */\n"
                                  "const char* s = \"str\";\n"
                                  "void f(void* d) { memcpy(d, d, 1); }\n",
                                  "cast-confinement");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintTokenizer, PragmaWithMultipleRules) {
  EXPECT_TRUE(lint("src/qos/manager.cpp",
                   "// sbqlint:allow(cast-confinement, clock-discipline): port shim\n"
                   "void f(void* d) { memcpy(d, d, 1); gettimeofday(0, 0); }\n")
                  .empty());
}

TEST(LintTokenizer, PragmaForOneRuleDoesNotSuppressAnother) {
  const auto findings = lint("src/qos/manager.cpp",
                             "// sbqlint:allow(cast-confinement): shim\n"
                             "void f(void* d) { memcpy(d, d, 1); gettimeofday(0, 0); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "clock-discipline");
}

// ---------------------------------------------------------------------- //
// Output format and metadata.
// ---------------------------------------------------------------------- //

TEST(LintOutput, FormatIsFileLineRuleMessage) {
  const Finding finding{"src/a/b.cpp", 42, "layering", "bad include"};
  EXPECT_EQ(format_finding(finding), "src/a/b.cpp:42: layering: bad include");
}

TEST(LintOutput, TwelveRulesAreRegistered) {
  const auto infos = rules();
  ASSERT_EQ(infos.size(), 12u);
  EXPECT_EQ(infos[0].name, "layering");
  EXPECT_EQ(infos[1].name, "no-raw-throw");
  EXPECT_EQ(infos[2].name, "no-swallow");
  EXPECT_EQ(infos[3].name, "cast-confinement");
  EXPECT_EQ(infos[4].name, "clock-discipline");
  EXPECT_EQ(infos[5].name, "sleep-discipline");
  EXPECT_EQ(infos[6].name, "event-loop-blocking");
  EXPECT_EQ(infos[7].name, "lock-discipline");
  EXPECT_EQ(infos[8].name, "hot-path-allocation");
  EXPECT_EQ(infos[9].name, "guarded-field");
  EXPECT_EQ(infos[10].name, "thread-affinity");
  EXPECT_EQ(infos[11].name, "bad-pragma");
}

// ---------------------------------------------------------------------- //
// Graph rules: a reduced config (custom roots, its own blocking set, no
// layering pruning) probes each rule's mechanics in isolation.
// ---------------------------------------------------------------------- //

Config graph_config() {
  Config config;
  config.event_roots = {"loop_root"};
  config.blocking_calls = {"block_op", "wait"};
  config.blocking_exempt_receivers = {"poller"};
  config.hot_path_roots = {"hot_root"};
  config.hot_path_allowlist = {"staging_ok"};
  config.hot_allocation_calls = {"to_string"};
  config.affinity_roots = {{"alpha", {"alpha_root"}}, {"beta", {"beta_root"}}};
  return config;
}

std::vector<Finding> lint_graph(const std::string& src,
                                const std::string& rule) {
  const std::vector<SourceFile> files{{"src/common/t.cpp", src}};
  std::vector<Finding> out;
  for (Finding& f : analyze_program(files, graph_config())) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

// ----------------------------------------------------------------------
// event-loop-blocking
// ----------------------------------------------------------------------

TEST(LintEventLoop, BlockingCallReachableFromRootIsFlagged) {
  const auto findings = lint_graph(
      "void loop_root() { step(); }\n"
      "void step() { block_op(); }\n",
      "event-loop-blocking");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("block_op"), std::string::npos);
  EXPECT_NE(findings[0].message.find("loop_root -> step"), std::string::npos);
}

TEST(LintEventLoop, UnreachableBlockingCallIsClean) {
  EXPECT_TRUE(lint_graph("void loop_root() { step(); }\n"
                         "void step() {}\n"
                         "void offline_job() { block_op(); }\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintEventLoop, PollerWaitIsTheBlessedBlock) {
  EXPECT_TRUE(lint_graph("void loop_root() { poller.wait(50); }\n",
                         "event-loop-blocking")
                  .empty());
  EXPECT_EQ(lint_graph("void loop_root() { other.wait(50); }\n",
                       "event-loop-blocking")
                .size(),
            1u);
}

TEST(LintEventLoop, PragmaOnCallLineSuppresses) {
  EXPECT_TRUE(lint_graph("void loop_root() { step(); }\n"
                         "void step() {\n"
                         "  block_op();  // sbqlint:allow(event-loop-blocking): bounded\n"
                         "}\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintEventLoop, PragmaOnDefinitionLineSuppressesWholeFunction) {
  // Function-scoped suppression: the pragma sits on (or right above) the
  // attributed function's definition line, not the finding line.
  EXPECT_TRUE(lint_graph("void loop_root() { step(); }\n"
                         "// sbqlint:allow(event-loop-blocking): drains one item\n"
                         "void step() {\n"
                         "  block_op();\n"
                         "}\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintEventLoop, PragmaOnAnotherFunctionDoesNotLeak) {
  const auto findings = lint_graph(
      "// sbqlint:allow(event-loop-blocking): wrong function\n"
      "void loop_root() { step(); }\n"
      "void step() {\n"
      "  block_op();\n"
      "}\n",
      "event-loop-blocking");
  EXPECT_EQ(findings.size(), 1u);
}

// ----------------------------------------------------------------------
// Call-graph construction: attribution, folding, resolution edge cases.
// ----------------------------------------------------------------------

TEST(LintCallGraph, LambdaBodyIsAttributedToEnclosingFunction) {
  const auto findings = lint_graph(
      "void loop_root() { submit([&] { block_op(); }); }\n",
      "event-loop-blocking");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("loop_root"), std::string::npos);
}

TEST(LintCallGraph, OverloadSetsFoldIntoOneNode) {
  const auto findings = lint_graph(
      "void loop_root() { helper(1); }\n"
      "void helper(int a) {}\n"
      "void helper(double b) { block_op(); }\n",
      "event-loop-blocking");
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintCallGraph, ImplicitCallPrefersSameClassMethod) {
  // Loop::loop_root's `work()` is Loop::work, not the namespace-level
  // work() that blocks.
  EXPECT_TRUE(lint_graph("namespace n {\n"
                         "void work() { block_op(); }\n"
                         "struct Loop {\n"
                         "  void loop_root() { work(); }\n"
                         "  void work() {}\n"
                         "};\n"
                         "}\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintCallGraph, FreeFunctionResolvesWhenNoMethodShadowsIt) {
  const auto findings = lint_graph(
      "namespace n {\n"
      "void work() { block_op(); }\n"
      "struct Loop {\n"
      "  void loop_root() { work(); }\n"
      "};\n"
      "}\n",
      "event-loop-blocking");
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintCallGraph, RecursiveCycleTerminates) {
  const auto findings = lint_graph(
      "void loop_root() { ping(); }\n"
      "void ping() { pong(); }\n"
      "void pong() { ping(); block_op(); }\n",
      "event-loop-blocking");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("loop_root -> ping -> pong"),
            std::string::npos);
}

TEST(LintCallGraph, EdgePragmaConnectsInvisibleCallback) {
  const auto findings = lint_graph(
      "void loop_root() { run_callbacks(); }\n"
      "// sbqlint:edge(loop_root -> on_ready)\n"
      "void on_ready() { block_op(); }\n",
      "event-loop-blocking");
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintCallGraph, DeclarationIsNotACall) {
  // `Blk block_op(1)` declares a variable named like the blocking
  // primitive; only call positions count.
  EXPECT_TRUE(lint_graph("void loop_root() { Blk block_op(1); }\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintCallGraph, GlobalQualifiedSyscallIsNotARepoCall) {
  // `::block_op(...)` names the C library / kernel, not a repo function.
  EXPECT_TRUE(lint_graph("void loop_root() { ::block_op(7); }\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintCallGraph, AmbiguousReceiverCallResolvesToNothing) {
  // `x.step()` with two unrelated candidate classes: the receiver's type
  // is unknowable, so no edge is drawn (sbqlint:edge declares real ones).
  EXPECT_TRUE(lint_graph("void loop_root() { x.step(); }\n"
                         "struct B { void step() { block_op(); } };\n"
                         "struct C { void step() { block_op(); } };\n",
                         "event-loop-blocking")
                  .empty());
}

TEST(LintCallGraph, UniqueReceiverCallResolves) {
  const auto findings = lint_graph(
      "void loop_root() { x.step(); }\n"
      "struct B { void step() { block_op(); } };\n",
      "event-loop-blocking");
  EXPECT_EQ(findings.size(), 1u);
}

// ----------------------------------------------------------------------
// lock-discipline
// ----------------------------------------------------------------------

TEST(LintLock, BlockingCallUnderLockIsFlagged) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  void f() { std::lock_guard l(mu_); block_op(); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("while holding lock 'mu_'"),
            std::string::npos);
}

TEST(LintLock, GuardScopeEndsAtBlockExit) {
  EXPECT_TRUE(lint_graph("struct S {\n"
                         "  int mu_;\n"
                         "  void f() {\n"
                         "    { std::lock_guard l(mu_); touch(); }\n"
                         "    block_op();\n"
                         "  }\n"
                         "};\n",
                         "lock-discipline")
                  .empty());
}

TEST(LintLock, CvWaitReleasesItsGuard) {
  EXPECT_TRUE(lint_graph("struct S {\n"
                         "  int mu_; int cv_;\n"
                         "  void f() {\n"
                         "    std::unique_lock l(mu_);\n"
                         "    cv_.wait(l);\n"
                         "  }\n"
                         "};\n",
                         "lock-discipline")
                  .empty());
}

TEST(LintLock, NestedSameLockIsSelfDeadlock) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  void f() { std::lock_guard a(mu_); std::lock_guard b(mu_); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("self-deadlock"), std::string::npos);
}

TEST(LintLock, CalleeReacquiringHeldLockIsFlagged) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  void f() { std::lock_guard l(mu_); helper(); }\n"
      "  void helper() { std::lock_guard l(mu_); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("re-acquires lock 'mu_'"),
            std::string::npos);
}

TEST(LintLock, AbbaPairIsFlaggedOnce) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int a_mu_; int b_mu_;\n"
      "  void f() { std::lock_guard l1(a_mu_); std::lock_guard l2(b_mu_); }\n"
      "  void g() { std::lock_guard l2(b_mu_); std::lock_guard l1(a_mu_); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("ABBA"), std::string::npos);
}

TEST(LintLock, ConsistentOrderAcrossFunctionsIsClean) {
  EXPECT_TRUE(lint_graph("struct S {\n"
                         "  int a_mu_; int b_mu_;\n"
                         "  void f() { std::lock_guard l1(a_mu_); std::lock_guard l2(b_mu_); }\n"
                         "  void g() { std::lock_guard l1(a_mu_); std::lock_guard l2(b_mu_); }\n"
                         "};\n",
                         "lock-discipline")
                  .empty());
}

TEST(LintLock, CrossFunctionAbbaThroughCalleeIsFlagged) {
  // f holds a_mu_ and calls g, which takes b_mu_; h takes them in the
  // reverse order. The cycle spans the call graph, not one body.
  const auto findings = lint_graph(
      "struct S {\n"
      "  int a_mu_; int b_mu_;\n"
      "  void f() { std::lock_guard l(a_mu_); g(); }\n"
      "  void g() { std::lock_guard l(b_mu_); }\n"
      "  void h() { std::lock_guard l2(b_mu_); std::lock_guard l1(a_mu_); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
}

TEST(LintLock, ManualLockUnlockSpanIsTracked) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  void f() { mu_.lock(); block_op(); mu_.unlock(); }\n"
      "  void g() { mu_.lock(); mu_.unlock(); block_op(); }\n"
      "};\n",
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintLock, PragmaOnDefinitionLineSuppresses) {
  EXPECT_TRUE(lint_graph("struct S {\n"
                         "  int mu_;\n"
                         "  // sbqlint:allow(lock-discipline): startup only\n"
                         "  void f() { std::lock_guard l(mu_); block_op(); }\n"
                         "};\n",
                         "lock-discipline")
                  .empty());
}

// ----------------------------------------------------------------------
// hot-path-allocation
// ----------------------------------------------------------------------

TEST(LintHotPath, FlatStringOnHotPathIsFlagged) {
  const auto findings = lint_graph(
      "void hot_root() { stage(); }\n"
      "void stage() { std::string s(\"x\"); }\n",
      "hot-path-allocation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("std::string"), std::string::npos);
  EXPECT_NE(findings[0].message.find("hot_root -> stage"), std::string::npos);
}

TEST(LintHotPath, FlatVectorOnHotPathIsFlagged) {
  const auto findings = lint_graph(
      "void hot_root() { std::vector<char> v(1024); }\n",
      "hot-path-allocation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("std::vector<char>"), std::string::npos);
}

TEST(LintHotPath, OffPathAllocationIsClean) {
  EXPECT_TRUE(lint_graph("void hot_root() { append_segment(); }\n"
                         "void cold_setup() { std::string s(\"x\"); }\n",
                         "hot-path-allocation")
                  .empty());
}

TEST(LintHotPath, ThrowExpressionsLeaveTheHotPath) {
  // Error exits are off the fast path by definition; building the
  // exception message may allocate.
  EXPECT_TRUE(lint_graph(
                  "void hot_root() {\n"
                  "  if (bad) throw Error(std::string(\"context: \") + why);\n"
                  "}\n",
                  "hot-path-allocation")
                  .empty());
}

TEST(LintHotPath, AllowlistedStagingFunctionMayAllocate) {
  // staging_ok's own body is exempt, but traversal continues through it.
  const auto findings = lint_graph(
      "void hot_root() { staging_ok(); }\n"
      "void staging_ok() { std::string head(\"hdr\"); deeper(); }\n"
      "void deeper() { std::string s(\"x\"); }\n",
      "hot-path-allocation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintHotPath, CopyingCallsAreFlagged) {
  const auto findings = lint_graph(
      "void hot_root() { auto s = std::to_string(v); }\n",
      "hot-path-allocation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("copies on the zero-copy hot path"),
            std::string::npos);
}

TEST(LintHotPath, PragmaSuppresses) {
  EXPECT_TRUE(lint_graph(
                  "void hot_root() {\n"
                  "  std::string s(\"x\");  // sbqlint:allow(hot-path-allocation): startup\n"
                  "}\n",
                  "hot-path-allocation")
                  .empty());
}

// ----------------------------------------------------------------------
// guarded-field
// ----------------------------------------------------------------------

TEST(LintGuardedField, UnlockedWriteIsFlagged) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
      "  void touch() { x_ = 1; }\n"
      "};\n",
      "guarded-field");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("write to field 'x_'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("unlocked path:"), std::string::npos);
  EXPECT_NE(findings[0].message.find("S::touch"), std::string::npos);
}

TEST(LintGuardedField, LockedAccessIsClean) {
  EXPECT_TRUE(lint_graph(
                  "struct S {\n"
                  "  int mu_;\n"
                  "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
                  "  void touch() { std::lock_guard lock(mu_); x_ = 1; }\n"
                  "  int peek() { std::lock_guard lock(mu_); return x_; }\n"
                  "};\n",
                  "guarded-field")
                  .empty());
}

TEST(LintGuardedField, CallerHeldLockPropagatesToCallee) {
  // The `*_locked` helper idiom: the callee never takes the lock itself,
  // every caller enters with it held.
  EXPECT_TRUE(lint_graph(
                  "struct S {\n"
                  "  int mu_;\n"
                  "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
                  "  void outer() { std::lock_guard lock(mu_); inner(); }\n"
                  "  void also() { std::lock_guard lock(mu_); inner(); }\n"
                  "  void inner() { x_ = 2; }\n"
                  "};\n",
                  "guarded-field")
                  .empty());
}

TEST(LintGuardedField, WrongMutexInCallerIsFlaggedWithWitness) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int mu_;\n"
      "  int other_mu_;\n"
      "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
      "  void outer() { std::lock_guard lock(other_mu_); inner(); }\n"
      "  void inner() { x_ = 2; }\n"
      "};\n",
      "guarded-field");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("S::outer -> S::inner"),
            std::string::npos);
}

TEST(LintGuardedField, ConstructorMayInitializeUnlocked) {
  EXPECT_TRUE(lint_graph(
                  "struct S {\n"
                  "  int mu_;\n"
                  "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
                  "  S() { x_ = 7; }\n"
                  "  ~S() { x_ = 0; }\n"
                  "};\n",
                  "guarded-field")
                  .empty());
}

TEST(LintGuardedField, ReceiverQualifiedAccessMatchesByLockName) {
  // `lock(b.box_mu_)` keys the guard under Owner (the locking function's
  // class), not Box where the field lives: receiver-qualified accesses
  // must match the guard by the lock member's name.
  const auto findings = lint_graph(
      "struct Owner {\n"
      "  struct Box {\n"
      "    int box_mu_;\n"
      "    int q_ = 0;  // sbqlint:guarded_by(box_mu_)\n"
      "  };\n"
      "  void good(Box& b) { std::lock_guard lock(b.box_mu_); b.q_ = 1; }\n"
      "  void bad(Box& b) { b.q_ = 1; }\n"
      "};\n",
      "guarded-field");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintGuardedField, PragmaSuppresses) {
  EXPECT_TRUE(lint_graph(
                  "struct S {\n"
                  "  int mu_;\n"
                  "  int x_ = 0;  // sbqlint:guarded_by(mu_)\n"
                  "  void touch() { x_ = 1; }  // sbqlint:allow(guarded-field): startup only\n"
                  "};\n",
                  "guarded-field")
                  .empty());
}

// ----------------------------------------------------------------------
// thread-affinity
// ----------------------------------------------------------------------

TEST(LintAffinity, FunctionReachableFromWrongRootIsFlagged) {
  const auto findings = lint_graph(
      "void alpha_root() { shared_step(); }\n"
      "void beta_root() { shared_step(); }\n"
      "// sbqlint:affine(alpha)\n"
      "void shared_step() {}\n",
      "thread-affinity");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("affine to 'alpha'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'beta' root"), std::string::npos);
  EXPECT_NE(findings[0].message.find("beta_root -> shared_step"),
            std::string::npos);
}

TEST(LintAffinity, OwnRootOnlyIsClean) {
  EXPECT_TRUE(lint_graph(
                  "void alpha_root() { own_step(); }\n"
                  "void beta_root() {}\n"
                  "// sbqlint:affine(alpha)\n"
                  "void own_step() {}\n",
                  "thread-affinity")
                  .empty());
}

TEST(LintAffinity, AffineFieldAccessFromWrongRootIsFlagged) {
  const auto findings = lint_graph(
      "struct S {\n"
      "  int w_ = 0;  // sbqlint:affine(alpha)\n"
      "  void step() { w_ = 1; }\n"
      "};\n"
      "void alpha_root(S& s) { s.step(); }\n"
      "void beta_root(S& s) { s.step(); }\n",
      "thread-affinity");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("write to field 'w_' affine to 'alpha'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("'beta' root"), std::string::npos);
}

TEST(LintAffinity, PragmaSuppresses) {
  EXPECT_TRUE(lint_graph(
                  "void alpha_root() { shared_step(); }\n"
                  "void beta_root() { shared_step(); }\n"
                  "// sbqlint:affine(alpha)\n"
                  "void shared_step() {}  // sbqlint:allow(thread-affinity): migrating\n",
                  "thread-affinity")
                  .empty());
}

// ----------------------------------------------------------------------
// bad-pragma
// ----------------------------------------------------------------------

TEST(LintBadPragma, UnknownRuleNameIsFlagged) {
  const auto findings = lint_rule(
      "src/http/server.cpp",
      "// sbqlint:allow(no-such-rule): typo\nvoid f() {}\n", "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintBadPragma, MalformedEdgePragmaIsFlagged) {
  const auto findings = lint_rule(
      "src/http/server.cpp", "// sbqlint:edge(no arrow here)\n", "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
}

TEST(LintBadPragma, DanglingEdgePragmaIsFlagged) {
  const auto findings = lint_graph(
      "// sbqlint:edge(nope -> nada)\nvoid loop_root() {}\n", "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("does not resolve"), std::string::npos);
}

TEST(LintBadPragma, MalformedFieldAnnotationIsFlagged) {
  const auto findings = lint_rule(
      "src/http/server.cpp",
      "struct S { int x_ = 0; };  // sbqlint:guarded_by(two words)\n",
      "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

TEST(LintBadPragma, DanglingFieldAnnotationIsFlagged) {
  const auto findings = lint_graph(
      "// sbqlint:guarded_by(mu_)\n"
      "void loop_root() {}\n",
      "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("does not bind"), std::string::npos);
}

TEST(LintBadPragma, UnknownAffinityRootIsFlagged) {
  const auto findings = lint_graph(
      "// sbqlint:affine(gamma)\n"
      "void loop_root() {}\n",
      "bad-pragma");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("unknown thread root"), std::string::npos);
}

TEST(LintBadPragma, ProseMentioningPragmasIsNotAPragma) {
  // A pragma must open its comment; documentation citing the form
  // mid-sentence (or quoting an example line) never registers.
  EXPECT_TRUE(lint("src/http/server.cpp",
                   "// see sbqlint:allow(whatever) in the docs\n"
                   "//   // sbqlint:edge(caller -> callee) — example form\n")
                  .empty());
}

// ---------------------------------------------------------------------- //
// Seeded regressions against the real tree: inject one violation of each
// kind next to the real event/hot roots and demand exactly that finding.
// ---------------------------------------------------------------------- //

std::vector<Finding> lint_seeded(const SourceFile& seed,
                                 const std::string& rule) {
  std::vector<SourceFile> files = load_tree(SBQ_SOURCE_ROOT);
  files.push_back(seed);
  std::vector<Finding> out;
  for (Finding& f : analyze_program(files, default_config())) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

TEST(LintSeeded, BlockingCallInEventReachableFunctionIsCaught) {
  const auto findings = lint_seeded(
      {"src/http/seeded_evt.cpp",
       "// sbqlint:edge(EventFront::Impl::advance_parse -> seeded_block)\n"
       "namespace sbq::http {\n"
       "void seeded_block() { wait_on(source, 5); }\n"
       "}\n"},
      "event-loop-blocking");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_evt.cpp");
  EXPECT_NE(findings[0].message.find("shard_loop"), std::string::npos);
}

TEST(LintSeeded, AbbaLockPairIsCaught) {
  const auto findings = lint_seeded(
      {"src/http/seeded_abba.cpp",
       "namespace sbq::http {\n"
       "struct Seeded {\n"
       "  int a_mu_; int b_mu_;\n"
       "  void f() { std::lock_guard l1(a_mu_); std::lock_guard l2(b_mu_); }\n"
       "  void g() { std::lock_guard l2(b_mu_); std::lock_guard l1(a_mu_); }\n"
       "};\n"
       "}\n"},
      "lock-discipline");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_abba.cpp");
  EXPECT_NE(findings[0].message.find("lock-order cycle"), std::string::npos);
}

TEST(LintSeeded, HotPathStringCopyIsCaught) {
  const auto findings = lint_seeded(
      {"src/http/seeded_hot.cpp",
       "// sbqlint:edge(Response::serialize_to -> seeded_copy)\n"
       "namespace sbq::http {\n"
       "void seeded_copy() { std::string flat(\"copied\"); }\n"
       "}\n"},
      "hot-path-allocation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_hot.cpp");
  EXPECT_NE(findings[0].message.find("serialize_to"), std::string::npos);
}

TEST(LintSeeded, UnlockedWriteToGuardedFieldIsCaught) {
  const auto findings = lint_seeded(
      {"src/http/seeded_guard.cpp",
       "namespace sbq::http {\n"
       "struct SeededGuard {\n"
       "  int seeded_mu_;\n"
       "  int counter_ = 0;  // sbqlint:guarded_by(seeded_mu_)\n"
       "  void bump() { counter_ = counter_ + 1; }\n"
       "};\n"
       "}\n"},
      "guarded-field");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_guard.cpp");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("write to field 'counter_'"),
            std::string::npos);
  // The witness chain must name the offending accessor.
  EXPECT_NE(findings[0].message.find("unlocked path:"), std::string::npos);
  EXPECT_NE(findings[0].message.find("SeededGuard::bump"), std::string::npos);
}

TEST(LintSeeded, WrongMutexOnTheOnlyPathInIsCaught) {
  // The guarded access is reached only through a caller that holds a
  // DIFFERENT mutex — the witness chain walks that unlocked path.
  const auto findings = lint_seeded(
      {"src/http/seeded_wrongmu.cpp",
       "namespace sbq::http {\n"
       "struct SeededWrong {\n"
       "  int right_mu_;\n"
       "  int wrong_mu_;\n"
       "  int state_ = 0;  // sbqlint:guarded_by(right_mu_)\n"
       "  void entry() { std::lock_guard lock(wrong_mu_); leaf(); }\n"
       "  void leaf() { state_ = 1; }\n"
       "};\n"
       "}\n"},
      "guarded-field");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_wrongmu.cpp");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("without holding 'right_mu_'"),
            std::string::npos);
  EXPECT_NE(
      findings[0].message.find("SeededWrong::entry -> "),
      std::string::npos);
  EXPECT_NE(findings[0].message.find("SeededWrong::leaf"), std::string::npos);
}

TEST(LintSeeded, WorkerCallingShardAffineFunctionIsCaught) {
  // A worker-pool function crossing into event-shard-affine code: the
  // path witness must lead from the worker root to the affine callee.
  const auto findings = lint_seeded(
      {"src/http/seeded_affinity.cpp",
       "// sbqlint:edge(EventFront::Impl::worker_loop -> seeded_touch_shard)\n"
       "namespace sbq::http {\n"
       "// sbqlint:affine(event-shard)\n"
       "void seeded_touch_shard() {}\n"
       "}\n"},
      "thread-affinity");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/http/seeded_affinity.cpp");
  EXPECT_NE(findings[0].message.find("affine to 'event-shard'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("'worker' root"), std::string::npos);
  EXPECT_NE(findings[0].message.find("worker_loop"), std::string::npos);
  EXPECT_NE(findings[0].message.find("seeded_touch_shard"), std::string::npos);
}

TEST(LintSeeded, RunStatsCountTheProgram) {
  RunStats stats;
  const auto findings = analyze_program(load_tree(SBQ_SOURCE_ROOT),
                                        default_config(), {}, &stats);
  EXPECT_TRUE(findings.empty());
  EXPECT_GT(stats.files_scanned, 100u);
  EXPECT_GT(stats.functions, 500u);
  EXPECT_GT(stats.call_edges, 1000u);
  EXPECT_GE(stats.annotated_fields, 30u);
  EXPECT_GE(stats.affinity_roots, 3u);
  EXPECT_EQ(stats.rules_run.size(), 12u);
}

// ---------------------------------------------------------------------- //
// End-to-end: the repository itself must lint clean.
// ---------------------------------------------------------------------- //

TEST(LintRepo, WholeRepositoryIsClean) {
  const auto findings = analyze_tree(SBQ_SOURCE_ROOT, default_config());
  for (const Finding& finding : findings) {
    ADD_FAILURE() << format_finding(finding);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace sbq::lint
