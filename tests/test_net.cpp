// Unit tests for the network substrate: clocks, link models, cross-traffic,
// pipes, TCP loopback.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "net/link.h"
#include "net/pipe.h"
#include "net/sim_clock.h"
#include "net/tcp.h"

namespace sbq::net {
namespace {

TEST(SimClockTest, AdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_us(150);
  EXPECT_EQ(clock.now_us(), 150u);
  clock.set_us(1000);
  EXPECT_EQ(clock.now_us(), 1000u);
}

TEST(SteadyTimeSourceTest, MonotonicallyIncreases) {
  SteadyTimeSource clock;
  const auto a = clock.now_us();
  const auto b = clock.now_us();
  EXPECT_LE(a, b);
}

TEST(LinkModelTest, TransferTimeScalesWithBytes) {
  LinkModel link(lan_100mbps());
  const auto small = link.transfer_time_us(1000, 0);
  const auto large = link.transfer_time_us(1000000, 0);
  EXPECT_GT(large, small);
  // 1 MB at 100 Mbps is 80 ms of serialization.
  EXPECT_NEAR(static_cast<double>(large), 80000.0 + 280.0, 2000.0);
}

TEST(LinkModelTest, AdslIsSlowerThanLan) {
  LinkModel lan(lan_100mbps());
  LinkModel adsl(adsl_1mbps());
  EXPECT_GT(adsl.transfer_time_us(100000, 0), 50 * lan.transfer_time_us(100000, 0));
}

TEST(LinkModelTest, LatencyDominatesSmallMessages) {
  LinkModel adsl(adsl_1mbps());
  const auto tiny = adsl.transfer_time_us(10, 0);
  EXPECT_GE(tiny, adsl_1mbps().latency_us);
  EXPECT_LT(tiny, adsl_1mbps().latency_us + 2000);
}

TEST(LinkModelTest, RejectsNonPositiveBandwidth) {
  LinkConfig bad;
  bad.bandwidth_bps = 0;
  EXPECT_THROW(LinkModel{bad}, TransportError);
}

TEST(CrossTrafficTest, LoadAtRespectsPhases) {
  CrossTrafficSchedule schedule;
  schedule.add_phase(1000, 2000, 0.5);
  schedule.add_phase(1500, 3000, 0.8);
  EXPECT_DOUBLE_EQ(schedule.load_at(500), 0.0);
  EXPECT_DOUBLE_EQ(schedule.load_at(1200), 0.5);
  EXPECT_DOUBLE_EQ(schedule.load_at(1700), 0.8);  // overlapping: max
  EXPECT_DOUBLE_EQ(schedule.load_at(2500), 0.8);
  EXPECT_DOUBLE_EQ(schedule.load_at(3000), 0.0);  // end-exclusive
}

TEST(CrossTrafficTest, LoadClampedBelowOne) {
  CrossTrafficSchedule schedule;
  schedule.add_phase(0, 100, 2.0);
  EXPECT_LT(schedule.load_at(50), 1.0);
}

TEST(CrossTrafficTest, RejectsBadPhases) {
  CrossTrafficSchedule schedule;
  EXPECT_THROW(schedule.add_phase(100, 100, 0.5), TransportError);
  EXPECT_THROW(schedule.add_phase(0, 10, -0.1), TransportError);
}

TEST(CrossTrafficTest, CongestionSlowsTransfers) {
  LinkModel link(adsl_1mbps());
  CrossTrafficSchedule schedule;
  schedule.add_phase(10000, 20000, 0.75);
  link.set_cross_traffic(schedule);
  const auto quiet = link.transfer_time_us(50000, 0);
  const auto congested = link.transfer_time_us(50000, 15000);
  // 75% load leaves 25% bandwidth: serialization takes ~4x longer.
  EXPECT_GT(congested, 3 * quiet);
}

TEST(PipeTest, RoundTripBytes) {
  auto [a, b] = make_pipe();
  a->write_all(std::string_view{"hello"});
  char buf[8] = {};
  EXPECT_EQ(b->read_some(buf, sizeof buf), 5u);
  EXPECT_EQ(std::string_view(buf, 5), "hello");

  b->write_all(std::string_view{"world!"});
  char buf2[6];
  a->read_exact(buf2, 6);
  EXPECT_EQ(std::string_view(buf2, 6), "world!");
}

TEST(PipeTest, EofAfterClose) {
  auto [a, b] = make_pipe();
  a->write_all(std::string_view{"x"});
  a->close();
  char c;
  EXPECT_EQ(b->read_some(&c, 1), 1u);  // drains buffered byte
  EXPECT_EQ(b->read_some(&c, 1), 0u);  // then EOF
}

TEST(PipeTest, ReadBlocksUntilData) {
  auto [a, b] = make_pipe();
  std::thread writer([&a = a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->write_all(std::string_view{"late"});
  });
  char buf[4];
  b->read_exact(buf, 4);
  EXPECT_EQ(std::string_view(buf, 4), "late");
  writer.join();
}

TEST(PipeTest, WriteToClosedThrows) {
  auto [a, b] = make_pipe();
  b->close();
  EXPECT_THROW(a->write_all(std::string_view{"x"}), TransportError);
}

TEST(TcpTest, LoopbackRoundTrip) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    char buf[5];
    conn->read_exact(buf, 5);
    conn->write_all(std::string_view(buf, 5));
  });

  auto client = TcpStream::connect("127.0.0.1", listener.port());
  client->write_all(std::string_view{"proto"});
  char echo[5];
  client->read_exact(echo, 5);
  EXPECT_EQ(std::string_view(echo, 5), "proto");
  server.join();
}

TEST(TcpTest, ConnectRefusedThrows) {
  // Port 1 on loopback is almost certainly closed.
  EXPECT_THROW(TcpStream::connect("127.0.0.1", 1), TransportError);
}

TEST(TcpTest, CloseUnblocksAccept) {
  TcpListener listener(0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
}

}  // namespace
}  // namespace sbq::net
