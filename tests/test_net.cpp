// Unit tests for the network substrate: clocks, link models, cross-traffic,
// pipes, TCP loopback, readiness polling, and the non-blocking socket
// surface that the event-driven serving front drives.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "net/link.h"
#include "net/pipe.h"
#include "net/poller.h"
#include "net/sim_clock.h"
#include "net/tcp.h"

namespace sbq::net {
namespace {

TEST(SimClockTest, AdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_us(150);
  EXPECT_EQ(clock.now_us(), 150u);
  clock.set_us(1000);
  EXPECT_EQ(clock.now_us(), 1000u);
}

TEST(SteadyTimeSourceTest, MonotonicallyIncreases) {
  SteadyTimeSource clock;
  const auto a = clock.now_us();
  const auto b = clock.now_us();
  EXPECT_LE(a, b);
}

TEST(LinkModelTest, TransferTimeScalesWithBytes) {
  LinkModel link(lan_100mbps());
  const auto small = link.transfer_time_us(1000, 0);
  const auto large = link.transfer_time_us(1000000, 0);
  EXPECT_GT(large, small);
  // 1 MB at 100 Mbps is 80 ms of serialization.
  EXPECT_NEAR(static_cast<double>(large), 80000.0 + 280.0, 2000.0);
}

TEST(LinkModelTest, AdslIsSlowerThanLan) {
  LinkModel lan(lan_100mbps());
  LinkModel adsl(adsl_1mbps());
  EXPECT_GT(adsl.transfer_time_us(100000, 0), 50 * lan.transfer_time_us(100000, 0));
}

TEST(LinkModelTest, LatencyDominatesSmallMessages) {
  LinkModel adsl(adsl_1mbps());
  const auto tiny = adsl.transfer_time_us(10, 0);
  EXPECT_GE(tiny, adsl_1mbps().latency_us);
  EXPECT_LT(tiny, adsl_1mbps().latency_us + 2000);
}

TEST(LinkModelTest, RejectsNonPositiveBandwidth) {
  LinkConfig bad;
  bad.bandwidth_bps = 0;
  EXPECT_THROW(LinkModel{bad}, TransportError);
}

TEST(CrossTrafficTest, LoadAtRespectsPhases) {
  CrossTrafficSchedule schedule;
  schedule.add_phase(1000, 2000, 0.5);
  schedule.add_phase(1500, 3000, 0.8);
  EXPECT_DOUBLE_EQ(schedule.load_at(500), 0.0);
  EXPECT_DOUBLE_EQ(schedule.load_at(1200), 0.5);
  EXPECT_DOUBLE_EQ(schedule.load_at(1700), 0.8);  // overlapping: max
  EXPECT_DOUBLE_EQ(schedule.load_at(2500), 0.8);
  EXPECT_DOUBLE_EQ(schedule.load_at(3000), 0.0);  // end-exclusive
}

TEST(CrossTrafficTest, LoadClampedBelowOne) {
  CrossTrafficSchedule schedule;
  schedule.add_phase(0, 100, 2.0);
  EXPECT_LT(schedule.load_at(50), 1.0);
}

TEST(CrossTrafficTest, RejectsBadPhases) {
  CrossTrafficSchedule schedule;
  EXPECT_THROW(schedule.add_phase(100, 100, 0.5), TransportError);
  EXPECT_THROW(schedule.add_phase(0, 10, -0.1), TransportError);
}

TEST(CrossTrafficTest, CongestionSlowsTransfers) {
  LinkModel link(adsl_1mbps());
  CrossTrafficSchedule schedule;
  schedule.add_phase(10000, 20000, 0.75);
  link.set_cross_traffic(schedule);
  const auto quiet = link.transfer_time_us(50000, 0);
  const auto congested = link.transfer_time_us(50000, 15000);
  // 75% load leaves 25% bandwidth: serialization takes ~4x longer.
  EXPECT_GT(congested, 3 * quiet);
}

TEST(PipeTest, RoundTripBytes) {
  auto [a, b] = make_pipe();
  a->write_all(std::string_view{"hello"});
  char buf[8] = {};
  EXPECT_EQ(b->read_some(buf, sizeof buf), 5u);
  EXPECT_EQ(std::string_view(buf, 5), "hello");

  b->write_all(std::string_view{"world!"});
  char buf2[6];
  a->read_exact(buf2, 6);
  EXPECT_EQ(std::string_view(buf2, 6), "world!");
}

TEST(PipeTest, EofAfterClose) {
  auto [a, b] = make_pipe();
  a->write_all(std::string_view{"x"});
  a->close();
  char c;
  EXPECT_EQ(b->read_some(&c, 1), 1u);  // drains buffered byte
  EXPECT_EQ(b->read_some(&c, 1), 0u);  // then EOF
}

TEST(PipeTest, ReadBlocksUntilData) {
  auto [a, b] = make_pipe();
  std::thread writer([&a = a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->write_all(std::string_view{"late"});
  });
  char buf[4];
  b->read_exact(buf, 4);
  EXPECT_EQ(std::string_view(buf, 4), "late");
  writer.join();
}

TEST(PipeTest, WriteToClosedThrows) {
  auto [a, b] = make_pipe();
  b->close();
  EXPECT_THROW(a->write_all(std::string_view{"x"}), TransportError);
}

TEST(TcpTest, LoopbackRoundTrip) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    char buf[5];
    conn->read_exact(buf, 5);
    conn->write_all(std::string_view(buf, 5));
  });

  auto client = TcpStream::connect("127.0.0.1", listener.port());
  client->write_all(std::string_view{"proto"});
  char echo[5];
  client->read_exact(echo, 5);
  EXPECT_EQ(std::string_view(echo, 5), "proto");
  server.join();
}

TEST(TcpTest, ConnectRefusedThrows) {
  // Port 1 on loopback is almost certainly closed.
  EXPECT_THROW(TcpStream::connect("127.0.0.1", 1), TransportError);
}

TEST(TcpTest, CloseUnblocksAccept) {
  TcpListener listener(0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
}

// --------------------------------------------------------------- Poller

// Every Poller test runs both backends: poll(2) is the portable reference
// implementation the epoll backend must agree with.
std::vector<Poller::Backend> poller_backends() {
  std::vector<Poller::Backend> backends{Poller::Backend::kPoll};
#if defined(__linux__)
  backends.push_back(Poller::Backend::kEpoll);
#endif
  return backends;
}

/// A connected loopback TCP pair for readiness tests.
struct TcpPair {
  TcpPair() {
    TcpListener listener(0);
    client = TcpStream::connect("127.0.0.1", listener.port());
    served = listener.accept();
  }
  std::unique_ptr<TcpStream> client;
  std::unique_ptr<TcpStream> served;
};

TEST(PollerTest, ReportsReadableThenWritableOnBothBackends) {
  for (const auto backend : poller_backends()) {
    Poller poller(backend);
    TcpPair pair;
    poller.add(pair.served->fd(), /*want_read=*/true, /*want_write=*/false);
    EXPECT_EQ(poller.watched(), 1u);

    // Nothing to read yet: a zero-timeout wait reports nothing.
    EXPECT_TRUE(poller.wait(0).empty());

    pair.client->write_all(std::string_view{"ping"});
    const auto events = poller.wait(2000);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].fd, pair.served->fd());
    EXPECT_TRUE(events[0].readable);
    EXPECT_FALSE(events[0].writable);

    // Switch interest to writability: an idle socket is writable at once.
    poller.modify(pair.served->fd(), /*want_read=*/false, /*want_write=*/true);
    const auto writable = poller.wait(2000);
    ASSERT_EQ(writable.size(), 1u);
    EXPECT_TRUE(writable[0].writable);

    poller.remove(pair.served->fd());
    EXPECT_EQ(poller.watched(), 0u);
    EXPECT_TRUE(poller.wait(0).empty());
  }
}

TEST(PollerTest, WakeInterruptsABlockedWait) {
  for (const auto backend : poller_backends()) {
    Poller poller(backend);
    std::thread waker([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      poller.wake();
    });
    // Without the wake this would block five seconds; the wake must cut it
    // short (an empty event batch is the documented result).
    const auto events = poller.wait(5000);
    EXPECT_TRUE(events.empty());
    waker.join();
    // Wakes coalesce and are fully drained: the next wait blocks again.
    EXPECT_TRUE(poller.wait(0).empty());
  }
}

TEST(PollerTest, PeerCloseSurfacesAsReadableOrHangup) {
  for (const auto backend : poller_backends()) {
    Poller poller(backend);
    TcpPair pair;
    poller.add(pair.served->fd(), /*want_read=*/true, /*want_write=*/false);
    pair.client->close();
    const auto events = poller.wait(2000);
    ASSERT_EQ(events.size(), 1u);
    // EOF may be reported as plain readability (read returns 0) or as an
    // explicit hangup; the owner handles both the same way.
    EXPECT_TRUE(events[0].readable || events[0].hangup);
  }
}

// ------------------------------------------- non-blocking socket surface

TEST(TcpNonblockingTest, TryAcceptReportsWouldBlockThenDelivers) {
  TcpListener::Options options;
  options.nonblocking = true;
  TcpListener listener(0, options);

  bool would_block = false;
  EXPECT_EQ(listener.try_accept(would_block), nullptr);
  EXPECT_TRUE(would_block);

  auto client = TcpStream::connect("127.0.0.1", listener.port());
  std::unique_ptr<TcpStream> served;
  for (int spin = 0; spin < 2000 && !served; ++spin) {
    served = listener.try_accept(would_block);
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(served, nullptr);

  client->write_all(std::string_view{"ok"});
  char buf[2];
  served->read_exact(buf, 2);
  EXPECT_EQ(std::string_view(buf, 2), "ok");
}

TEST(TcpNonblockingTest, ReusePortAllowsSiblingListeners) {
  TcpListener::Options options;
  options.reuse_port = true;
  options.nonblocking = true;
  TcpListener first(0, options);
  // A second listener on the same port must bind cleanly — each one owns an
  // accept shard of the shared port (how the event front spreads accepts
  // across runtimes).
  TcpListener second(first.port(), options);
  EXPECT_EQ(second.port(), first.port());
}

TEST(TcpNonblockingTest, NonblockingReadDistinguishesWouldBlockFromEof) {
  TcpPair pair;
  pair.served->set_nonblocking(true);

  char buf[16];
  bool would_block = false;
  EXPECT_EQ(pair.served->read_some_nonblocking(buf, sizeof buf, would_block), 0u);
  EXPECT_TRUE(would_block);

  pair.client->write_all(std::string_view{"hi"});
  std::size_t n = 0;
  for (int spin = 0; spin < 2000 && n == 0; ++spin) {
    n = pair.served->read_some_nonblocking(buf, sizeof buf, would_block);
    if (n == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(n, 2u);

  pair.client->close();
  n = 1;
  would_block = true;
  for (int spin = 0; spin < 2000 && would_block; ++spin) {
    n = pair.served->read_some_nonblocking(buf, sizeof buf, would_block);
    if (would_block) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(would_block);  // 0 without would_block = EOF
}

TEST(TcpNonblockingTest, WriteChainSomeResumesFromAnOffset) {
  TcpPair pair;
  pair.served->set_nonblocking(true);
  BufferChain chain;
  const std::string payload = "resumable-vectored-write";
  chain.append_copy(as_bytes(payload));

  bool would_block = false;
  // Write the first half and the second half as separate resumed calls.
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const std::size_t n =
        pair.served->write_chain_some(chain, sent, would_block);
    if (n == 0 && would_block) continue;  // loopback: effectively never
    sent += n;
  }
  std::string got(payload.size(), '\0');
  pair.client->read_exact(got.data(), got.size());
  EXPECT_EQ(got, payload);
}

// -------------------------------------------------- write-side deadlines

TEST(TcpWriteDeadlineTest, StalledPeerTripsTheWriteDeadline) {
  TcpPair pair;
  // The peer never reads: once both socket buffers fill, the write stalls.
  pair.served->set_write_timeout_us(100'000);
  const std::string big(32 * 1024 * 1024, 'x');
  EXPECT_THROW(pair.served->write_all(std::string_view{big}), TimeoutError);
}

TEST(TcpWriteDeadlineTest, ChainWritesHonorTheDeadlineToo) {
  TcpPair pair;
  pair.served->set_write_timeout_us(100'000);
  const std::string big(32 * 1024 * 1024, 'y');
  BufferChain chain;
  chain.append_view(as_bytes(big));
  EXPECT_THROW(pair.served->write_chain(chain), TimeoutError);
}

TEST(TcpWriteDeadlineTest, SlowButLivePeerNeverTrips) {
  TcpPair pair;
  // Deadline bounds *stall*, not total transfer time: a peer that drains
  // slowly but steadily keeps re-arming it, so a transfer that takes far
  // longer than the deadline still completes.
  //
  // Clamp the send buffer: Linux asserts POLLOUT only once the buffer is
  // below half-full, so with an auto-tuned multi-megabyte buffer a steady
  // reader can leave the writer parked past the deadline before the first
  // wakeup. A small buffer keeps the writable edge within one reader tick.
  const int sndbuf = 64 * 1024;
  ::setsockopt(pair.served->fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf,
               sizeof sndbuf);
  pair.served->set_write_timeout_us(150'000);
  const std::string payload(4 * 1024 * 1024, 'z');

  std::thread slow_reader([&] {
    std::size_t total = 0;
    char buf[64 * 1024];
    while (total < payload.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::size_t n = pair.client->read_some(buf, sizeof buf);
      if (n == 0) break;
      total += n;
    }
    EXPECT_EQ(total, payload.size());
  });
  EXPECT_NO_THROW(pair.served->write_all(std::string_view{payload}));
  slow_reader.join();
}

}  // namespace
}  // namespace sbq::net
