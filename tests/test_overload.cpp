// Overload-protection tests: the degrade → shed → drain ladder
// (docs/robustness.md "Overload and drain").
//
//   * qos::LoadMonitor unit behavior (EWMA-from-zero ramp, shed threshold,
//     queue high-water),
//   * the full ladder over a loopback runtime with a scripted load source:
//     quality steps down before shedding starts, sheds surface as
//     OverloadError, the client retry honors the server's Retry-After,
//   * the acceptance scenario on real TCP: a pool of 2 workers and a queue
//     of 2 absorb 16 concurrent imaging calls (with retries riding through
//     the sheds) without the thread cap ever being exceeded,
//   * graceful drain: in-flight exchanges finish with `Connection: close`,
//     stalled connections are force-closed only past the deadline, every
//     worker joins.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/client.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/server.h"
#include "net/sim_clock.h"
#include "net/tcp.h"
#include "pbio/value_codec.h"
#include "qos/load.h"
#include "qos/manager.h"
#include "qos/quality_file.h"
#include "wsdl/wsdl.h"

namespace sbq::core {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

// ------------------------------------------------------------- LoadMonitor

TEST(LoadMonitorTest, EwmaRampsFromZeroSoDegradePrecedesShed) {
  qos::LoadMonitor monitor(/*alpha=*/0.7, /*shed_threshold=*/0.9);
  EXPECT_DOUBLE_EQ(monitor.load(), 0.0);
  EXPECT_FALSE(monitor.should_shed());

  // Fully saturated samples: 2/2 workers busy, 2/2 queue slots taken.
  qos::LoadSample saturated;
  saturated.queue_depth = 2;
  saturated.queue_capacity = 2;
  saturated.in_flight = 2;
  saturated.workers = 2;

  // The smoothed load must cross a mid-range degrade boundary (0.5) strictly
  // before the shed threshold (0.9): quality steps down first.
  int polls_to_degrade = 0;
  int polls = 0;
  while (!monitor.should_shed()) {
    monitor.observe(saturated);
    ++polls;
    if (polls_to_degrade == 0 && monitor.load() >= 0.5) polls_to_degrade = polls;
    ASSERT_LT(polls, 100) << "shed threshold never reached";
  }
  EXPECT_GT(polls_to_degrade, 0);
  EXPECT_LT(polls_to_degrade, polls);
  EXPECT_GE(monitor.load(), 0.9);
  EXPECT_EQ(monitor.queue_high_water(), 2u);
  EXPECT_EQ(monitor.sample_count(), static_cast<std::uint64_t>(polls));

  // Idle samples decay the estimate back below the threshold.
  monitor.observe(qos::LoadSample{});
  EXPECT_FALSE(monitor.should_shed());
}

TEST(LoadMonitorTest, InstantaneousLoadAveragesWorkersAndQueue) {
  // α = 0: the smoothed value IS the instantaneous sample.
  qos::LoadMonitor monitor(/*alpha=*/0.0, /*shed_threshold=*/0.9);
  qos::LoadSample half;
  half.queue_depth = 0;
  half.queue_capacity = 4;
  half.in_flight = 4;
  half.workers = 4;
  // All workers busy, empty queue: load saturates at 0.5.
  EXPECT_DOUBLE_EQ(monitor.observe(half), 0.5);
  half.queue_depth = 4;
  EXPECT_DOUBLE_EQ(monitor.observe(half), 1.0);
}

TEST(LoadMonitorTest, EventPressureFeedsTheBacklogTerm) {
  // α = 0: the smoothed value IS the instantaneous sample.
  qos::LoadMonitor monitor(/*alpha=*/0.0, /*shed_threshold=*/0.9);

  // Event-front sample: all workers busy, dispatch queue empty, but every
  // live connection had a pending readiness event — the runtimes are
  // saturated, and the load must say so (backlog term = event pressure).
  qos::LoadSample event;
  event.queue_depth = 0;
  event.queue_capacity = 4;
  event.in_flight = 4;
  event.workers = 4;
  event.runtimes = 2;
  event.connections = 8;
  event.pending_events = 8;
  EXPECT_DOUBLE_EQ(monitor.observe(event), 1.0);

  // Quiet runtimes: the classic occupancy-only score.
  event.pending_events = 0;
  EXPECT_DOUBLE_EQ(monitor.observe(event), 0.5);

  // The backlog term is the max of queue fill and event pressure — a full
  // dispatch queue saturates it even with few pending events.
  event.queue_depth = 4;
  event.pending_events = 1;
  EXPECT_DOUBLE_EQ(monitor.observe(event), 1.0);

  // Threaded-front samples (event fields defaulted) score exactly as before.
  qos::LoadSample threaded;
  threaded.queue_depth = 2;
  threaded.queue_capacity = 4;
  threaded.in_flight = 0;
  threaded.workers = 4;
  EXPECT_DOUBLE_EQ(monitor.observe(threaded), 0.25);
}

TEST(LoadMonitorTest, PollSamplesTheSource) {
  qos::LoadMonitor monitor(/*alpha=*/0.0, /*shed_threshold=*/0.9);
  EXPECT_DOUBLE_EQ(monitor.poll(), 0.0);  // no source: unchanged
  monitor.set_source([] {
    qos::LoadSample s;
    s.queue_depth = 1;
    s.queue_capacity = 2;
    s.in_flight = 1;
    s.workers = 2;
    return s;
  });
  EXPECT_DOUBLE_EQ(monitor.poll(), 0.5);
  EXPECT_EQ(monitor.sample_count(), 1u);
}

TEST(LoadMonitorTest, RejectsBadParameters) {
  EXPECT_THROW(qos::LoadMonitor(/*alpha=*/1.0), QosError);
  EXPECT_THROW(qos::LoadMonitor(/*alpha=*/-0.1), QosError);
  EXPECT_THROW(qos::LoadMonitor(/*alpha=*/0.5, /*shed_threshold=*/0.0), QosError);
}

// ----------------------------------------------- imaging service fixture

FormatPtr req_format() {
  return FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build();
}

FormatPtr image_full_format() {
  return FormatBuilder("image_full")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

FormatPtr image_small_format() {
  return FormatBuilder("image_small")
      .add_scalar("id", TypeKind::kInt32)
      .add_var_array("data", TypeKind::kChar)
      .build();
}

constexpr std::size_t kImageBytes = 16000;

// The load-driven policy: below half load serve the full image, above it
// the reduced one. Shedding begins only at smoothed load 0.9 — the degrade
// rung fires first by construction.
constexpr const char* kLoadPolicy =
    "attribute server_load\n"
    "0 0.5 - image_full\n"
    "0.5 inf - image_small\n";

Value shrink_image(const Value& full, const pbio::FormatDesc& target,
                   const qos::AttributeMap&) {
  const std::string& data = full.field("data").as_string();
  Value out = pbio::project_value(full, target);
  out.set_field("data", Value{data.substr(0, data.size() / 8)});
  return out;
}

/// Imaging service whose quality manager monitors `server_load`.
struct LoadedImagingFixture {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  ServiceRuntime runtime{format_server, clock};
  std::shared_ptr<qos::QualityManager> server_quality;

  LoadedImagingFixture() {
    runtime.register_operation("fetch_image", req_format(), image_full_format(),
                               [](const Value&) {
                                 return Value::record(
                                     {{"id", 7},
                                      {"data", Value{std::string(kImageBytes, 'D')}}});
                               });
    server_quality = std::make_shared<qos::QualityManager>(
        qos::QualityFile::parse(kLoadPolicy), /*switch_threshold=*/1);
    server_quality->register_message_type("image_full", image_full_format());
    server_quality->register_message_type("image_small", image_small_format(),
                                          shrink_image);
    runtime.set_quality_manager(server_quality);
  }

  wsdl::ServiceDesc service(bool idempotent = true) {
    wsdl::ServiceDesc svc;
    svc.name = "Imaging";
    wsdl::OperationDesc op;
    op.name = "fetch_image";
    op.input = req_format();
    op.output = image_full_format();
    op.idempotent = idempotent;
    svc.operations.push_back(std::move(op));
    return svc;
  }
};

// --------------------------------------------- the ladder, deterministically

// Scripted load source: saturated for the first `saturated_polls` samples,
// idle afterwards. Driving the monitor through the runtime's per-request
// poll makes the whole ladder deterministic on the loopback transport.
qos::LoadMonitor::Source scripted_source(std::shared_ptr<std::atomic<int>> left) {
  return [left] {
    qos::LoadSample s;
    s.queue_capacity = 2;
    s.workers = 2;
    if (left->fetch_sub(1) > 0) {
      s.queue_depth = 2;
      s.in_flight = 2;
    }
    return s;
  };
}

TEST(OverloadLadderTest, DegradesThenShedsThenRecovers) {
  LoadedImagingFixture env;
  auto monitor = std::make_shared<qos::LoadMonitor>(
      /*alpha=*/0.7, /*shed_threshold=*/0.9, /*retry_after_s=*/1);
  // Saturated "forever" (until the test flips it below).
  auto saturated_left = std::make_shared<std::atomic<int>>(1'000'000);
  monitor->set_source(scripted_source(saturated_left));
  env.runtime.set_load_monitor(monitor);

  LoopbackTransport transport(env.runtime);
  // No client-side quality manager: on the loopback it would share the
  // server's, and the client's RTT observations would clobber the
  // server_load attribute. Reduced responses resolve through the format
  // server alone.
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);

  const Value params = Value::record({{"n", 1}});

  // Rung 1 — degrade: under sustained saturation the response type steps
  // down to image_small strictly before the monitor reaches the shed
  // threshold (the first shed ends the loop).
  bool degraded_before_shed = false;
  bool shed_seen = false;
  while (!shed_seen) {
    try {
      const Value result = client.call("fetch_image", params);
      EXPECT_EQ(result.field("id").as_i64(), 7);
      if (client.last_response_type() == "image_small") {
        degraded_before_shed = true;
      }
    } catch (const OverloadError&) {
      shed_seen = true;
    }
    ASSERT_LT(client.stats().calls, 100u) << "shed threshold never reached";
  }
  EXPECT_TRUE(degraded_before_shed);
  EXPECT_GT(client.stats().degradations, 0u);
  EXPECT_TRUE(monitor->should_shed());

  // Still saturated: the next call sheds again.
  EXPECT_THROW(client.call("fetch_image", params), OverloadError);
  EXPECT_GE(env.runtime.stats().sheds, 1u);
  EXPECT_GT(env.runtime.stats().queue_high_water, 0u);

  // Recovery with retries: saturation ends after the next poll, so the
  // first retried attempt succeeds. The client must honor the server's
  // 1-second Retry-After over its own 5 µs backoff — visible on the shared
  // simulated clock.
  saturated_left->store(1);  // one more saturated poll (the shed), then idle
  CallOptions opts;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff_us = 5;
  const std::uint64_t before_us = env.clock->now_us();
  const Value result = client.call("fetch_image", params, opts);
  EXPECT_EQ(result.field("id").as_i64(), 7);
  EXPECT_GE(client.stats().sheds, 3u);  // two unretried above + this one
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_GE(env.clock->now_us() - before_us, 1'000'000u)
      << "client ignored the server-provided Retry-After";
  // Sheds are flow control, not faults: the fault counter stayed put.
  EXPECT_EQ(client.stats().faults_injected, 0u);

  // Load has decayed: full quality comes back.
  for (int i = 0; i < 4; ++i) client.call("fetch_image", params);
  EXPECT_EQ(client.last_response_type(), "image_full");
  EXPECT_GT(client.stats().recoveries, 0u);
}

TEST(OverloadLadderTest, NonIdempotentShedIsNotRetried) {
  LoadedImagingFixture env;
  auto monitor = std::make_shared<qos::LoadMonitor>(
      /*alpha=*/0.0, /*shed_threshold=*/0.5, /*retry_after_s=*/1);
  auto always = std::make_shared<std::atomic<int>>(1'000'000);
  monitor->set_source(scripted_source(always));
  env.runtime.set_load_monitor(monitor);

  LoopbackTransport transport(env.runtime);
  ClientStub client(transport, WireFormat::kBinary,
                    env.service(/*idempotent=*/false), env.format_server,
                    env.clock);
  CallOptions opts;
  opts.retry.max_attempts = 5;
  EXPECT_THROW(client.call("fetch_image", Value::record({{"n", 1}}), opts),
               OverloadError);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().sheds, 1u);
}

TEST(OverloadLadderTest, ShedWorksOnTheXmlWire) {
  LoadedImagingFixture env;
  auto monitor = std::make_shared<qos::LoadMonitor>(
      /*alpha=*/0.0, /*shed_threshold=*/0.5, /*retry_after_s=*/2);
  auto always = std::make_shared<std::atomic<int>>(1'000'000);
  monitor->set_source(scripted_source(always));
  env.runtime.set_load_monitor(monitor);

  LoopbackTransport transport(env.runtime);
  ClientStub client(transport, WireFormat::kXml, env.service(),
                    env.format_server, env.clock);
  try {
    client.call("fetch_image", Value::record({{"n", 1}}));
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.retry_after_us(), 2'000'000u);
  }
}

// --------------------------------------------------- acceptance: real TCP

TEST(OverloadAcceptanceTest, SixteenConcurrentCallsThroughAPoolOfTwo) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  LoadedImagingFixture fixture;  // reuse formats/service description only

  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("fetch_image", req_format(), image_full_format(),
                             [](const Value&) {
                               return Value::record(
                                   {{"id", 7},
                                    {"data", Value{std::string(kImageBytes, 'D')}}});
                             });

  http::ServerOptions options;
  options.workers = 2;
  options.queue_depth = 2;
  options.shed_retry_after_s = 0;  // shed retries fall back to local backoff
  http::Server server(0, [&](const http::Request& r) { return runtime.handle(r); },
                      options);

  std::atomic<int> successes{0};
  std::atomic<std::uint64_t> client_sheds{0};
  std::atomic<bool> go{false};
  auto one_client = [&] {
    while (!go.load()) std::this_thread::yield();  // burst-arrival barrier
    HttpTransport transport([&]() -> std::unique_ptr<net::Stream> {
      return net::TcpStream::connect("127.0.0.1", server.port());
    });
    ClientStub client(transport, WireFormat::kBinary, fixture.service(),
                      format_server, clock);
    CallOptions opts;
    opts.deadline_us = 5'000'000;
    opts.retry.max_attempts = 60;
    opts.retry.initial_backoff_us = 2'000;
    opts.retry.max_backoff_us = 20'000;
    const Value result = client.call("fetch_image", Value::record({{"n", 1}}), opts);
    EXPECT_EQ(result.field("id").as_i64(), 7);
    ++successes;
    client_sheds += client.stats().sheds;
  };

  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int i = 0; i < 16; ++i) threads.emplace_back(one_client);
  go.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(successes.load(), 16);
  // The whole point: 16 clients never grew the pool past its 2 workers.
  EXPECT_LE(server.stats().peak_in_flight, 2u);
  EXPECT_GE(server.stats().accepted, 16u);
  // With a 16-connection burst against 2 workers + 2 queue slots, some
  // arrivals were shed and rode in on retries. (A shed the server counted
  // can surface client-side as a plain TransportError when the close's RST
  // outruns the 503, so the client count is a lower bound.)
  EXPECT_GT(server.stats().shed, 0u);
  EXPECT_LE(client_sheds.load(), server.stats().shed);
  server.shutdown();
}

// ------------------------------------ A/B: the same ladder, event front

// The acceptance scenario again, byte-for-byte the same client code, with
// the serving front switched to the event runtimes: the overload ladder
// must behave identically — bounded pool, sheds ride in on retries, every
// call eventually lands.
TEST(OverloadAcceptanceTest, SixteenConcurrentCallsThroughEventFrontPoolOfTwo) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  LoadedImagingFixture fixture;  // reuse formats/service description only

  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("fetch_image", req_format(), image_full_format(),
                             [](const Value&) {
                               return Value::record(
                                   {{"id", 7},
                                    {"data", Value{std::string(kImageBytes, 'D')}}});
                             });

  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 2;
  options.workers = 2;
  options.queue_depth = 2;
  options.shed_retry_after_s = 0;  // shed retries fall back to local backoff
  http::Server server(0, [&](const http::Request& r) { return runtime.handle(r); },
                      options);

  std::atomic<int> successes{0};
  std::atomic<std::uint64_t> client_sheds{0};
  std::atomic<bool> go{false};
  auto one_client = [&] {
    while (!go.load()) std::this_thread::yield();  // burst-arrival barrier
    HttpTransport transport([&]() -> std::unique_ptr<net::Stream> {
      return net::TcpStream::connect("127.0.0.1", server.port());
    });
    ClientStub client(transport, WireFormat::kBinary, fixture.service(),
                      format_server, clock);
    CallOptions opts;
    opts.deadline_us = 5'000'000;
    opts.retry.max_attempts = 60;
    opts.retry.initial_backoff_us = 2'000;
    opts.retry.max_backoff_us = 20'000;
    const Value result = client.call("fetch_image", Value::record({{"n", 1}}), opts);
    EXPECT_EQ(result.field("id").as_i64(), 7);
    ++successes;
    client_sheds += client.stats().sheds;
  };

  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int i = 0; i < 16; ++i) threads.emplace_back(one_client);
  go.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(successes.load(), 16);
  // The bounded pool held: in-flight exchanges never exceeded the workers
  // plus the dispatch-queue slots (the event front counts an exchange from
  // dispatch admission to the response hitting the kernel).
  EXPECT_LE(server.stats().peak_in_flight,
            static_cast<std::uint64_t>(options.workers + options.queue_depth));
  EXPECT_GE(server.stats().accepted, 16u);
  // With a 16-call burst against 2 workers + 2 queue slots, some requests
  // were shed with the canned 503 and rode in on retries.
  EXPECT_GT(server.stats().shed, 0u);
  EXPECT_LE(client_sheds.load(), server.stats().shed);
  server.shutdown();
}

// The degrade rung ahead of the shed rung, through the event front: under a
// saturated load monitor the quality manager steps responses down to
// image_small strictly before admission control starts answering 503.
TEST(OverloadLadderTest, DegradeThenShedBehindTheEventFront) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = std::make_shared<net::SteadyTimeSource>();
  LoadedImagingFixture fixture;  // reuse formats/service description only

  ServiceRuntime runtime(format_server, clock);
  runtime.register_operation("fetch_image", req_format(), image_full_format(),
                             [](const Value&) {
                               return Value::record(
                                   {{"id", 7},
                                    {"data", Value{std::string(kImageBytes, 'D')}}});
                             });
  auto server_quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(kLoadPolicy), /*switch_threshold=*/1);
  server_quality->register_message_type("image_full", image_full_format());
  server_quality->register_message_type("image_small", image_small_format(),
                                        shrink_image);
  runtime.set_quality_manager(server_quality);

  auto monitor = std::make_shared<qos::LoadMonitor>(
      /*alpha=*/0.7, /*shed_threshold=*/0.9, /*retry_after_s=*/1);
  auto saturated_left = std::make_shared<std::atomic<int>>(1'000'000);
  monitor->set_source(scripted_source(saturated_left));
  runtime.set_load_monitor(monitor);

  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 2;
  options.workers = 2;
  http::Server server(0, [&](const http::Request& r) { return runtime.handle(r); },
                      options);

  HttpTransport transport([&]() -> std::unique_ptr<net::Stream> {
    return net::TcpStream::connect("127.0.0.1", server.port());
  });
  ClientStub client(transport, WireFormat::kBinary, fixture.service(),
                    format_server, clock);

  const Value params = Value::record({{"n", 1}});
  bool degraded_before_shed = false;
  bool shed_seen = false;
  while (!shed_seen) {
    try {
      const Value result = client.call("fetch_image", params);
      EXPECT_EQ(result.field("id").as_i64(), 7);
      if (client.last_response_type() == "image_small") {
        degraded_before_shed = true;
      }
    } catch (const OverloadError&) {
      shed_seen = true;
    }
    ASSERT_LT(client.stats().calls, 100u) << "shed threshold never reached";
  }
  EXPECT_TRUE(degraded_before_shed);
  EXPECT_GT(client.stats().degradations, 0u);
  EXPECT_TRUE(monitor->should_shed());
  EXPECT_GE(runtime.stats().sheds, 1u);

  // Final rung: the drain. Idle at this point, so it completes immediately
  // and counts exactly once.
  server.shutdown(/*drain_deadline_us=*/500'000);
  EXPECT_EQ(server.stats().drains, 1u);
}

// The standard wiring between a server and the monitor: the event front's
// load signal carries runtimes and live connections into the LoadSample.
TEST(OverloadLadderTest, EventServerLoadSourceCarriesRuntimeSignals) {
  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 2;
  options.workers = 3;
  options.queue_depth = 5;
  http::Server server(0, [](const http::Request&) { return http::Response{}; },
                      options);

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  http::Client conn(*stream);
  http::Request req;
  req.method = "POST";
  req.set_body("x");
  (void)conn.round_trip(req);  // keep-alive: the connection stays live

  const http::ServerLoad load = server.load();
  EXPECT_EQ(load.runtimes, 2u);
  EXPECT_EQ(load.workers, 3u);
  EXPECT_EQ(load.queue_capacity, 5u);
  EXPECT_GE(load.connections, 1u);

  qos::LoadMonitor monitor(/*alpha=*/0.0, /*shed_threshold=*/0.9);
  monitor.set_source(server_load_source(server));
  const double smoothed = monitor.poll();
  EXPECT_GE(smoothed, 0.0);
  EXPECT_LE(smoothed, 1.0);
  EXPECT_EQ(monitor.sample_count(), 1u);
  server.shutdown();
}

// ---------------------------------------------------------------- draining

TEST(DrainTest, GracefulDrainFinishesInFlightWithConnectionClose) {
  std::atomic<bool> in_handler{false};
  http::ServerOptions options;
  options.workers = 2;
  http::Server server(0,
                      [&](const http::Request&) {
                        in_handler.store(true);
                        std::this_thread::sleep_for(std::chrono::milliseconds(100));
                        http::Response resp;
                        resp.set_body("slow but done");
                        return resp;
                      },
                      options);

  http::Response resp;
  std::thread caller([&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    http::Client conn(*stream);
    http::Request req;
    req.method = "POST";
    req.set_body("x");
    resp = conn.round_trip(req);
  });
  while (!in_handler.load()) std::this_thread::yield();

  server.shutdown(/*drain_deadline_us=*/2'000'000);
  caller.join();

  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body_string(), "slow but done");
  // The drain told the client this connection is done.
  EXPECT_EQ(resp.headers.get("Connection").value_or(""), "close");
  EXPECT_EQ(server.stats().drains, 1u);
  EXPECT_EQ(server.stats().forced_closes, 0u);
}

TEST(DrainTest, StalledConnectionIsForceClosedPastTheDeadline) {
  http::ServerOptions options;
  options.workers = 1;
  http::Server server(0, [](const http::Request&) { return http::Response{}; },
                      options);

  // A client that connects and then says nothing: the single worker blocks
  // in read_request (no idle deadline configured).
  auto stalled = net::TcpStream::connect("127.0.0.1", server.port());
  // Give the worker a moment to adopt the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The drain deadline passes with the exchange still "in flight"; shutdown
  // must force-close it and join the worker instead of hanging.
  server.shutdown(/*drain_deadline_us=*/100'000);
  EXPECT_GE(server.stats().forced_closes, 1u);
  EXPECT_EQ(server.stats().drains, 1u);
}

TEST(DrainTest, QueuedButUnservedConnectionsGetTheCanned503) {
  // One worker, parked on a slow call; the next connection waits in the
  // queue and must be answered 503 (not silence) when the drain begins.
  std::atomic<bool> in_handler{false};
  http::ServerOptions options;
  options.workers = 1;
  options.queue_depth = 4;
  http::Server server(0,
                      [&](const http::Request&) {
                        in_handler.store(true);
                        std::this_thread::sleep_for(std::chrono::milliseconds(150));
                        return http::Response{};
                      },
                      options);

  std::thread busy([&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    http::Client conn(*stream);
    http::Request req;
    req.method = "POST";
    req.set_body("x");
    (void)conn.round_trip(req);
  });
  while (!in_handler.load()) std::this_thread::yield();

  auto queued = net::TcpStream::connect("127.0.0.1", server.port());
  // Wait until the acceptor has enqueued the second connection.
  while (server.load().queue_depth == 0) std::this_thread::yield();

  server.shutdown(/*drain_deadline_us=*/1'000'000);
  busy.join();

  http::MessageReader reader(*queued);
  const auto resp = reader.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  EXPECT_TRUE(resp->headers.has("Retry-After"));
  EXPECT_EQ(resp->headers.get("Connection").value_or(""), "close");
}

// ------------------------------------------------- draining, event front

TEST(DrainTest, EventFrontGracefulDrainFinishesInFlightWithConnectionClose) {
  std::atomic<bool> in_handler{false};
  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 2;
  options.workers = 2;
  http::Server server(0,
                      [&](const http::Request&) {
                        in_handler.store(true);
                        std::this_thread::sleep_for(std::chrono::milliseconds(100));
                        http::Response resp;
                        resp.set_body("slow but done");
                        return resp;
                      },
                      options);

  http::Response resp;
  std::thread caller([&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    http::Client conn(*stream);
    http::Request req;
    req.method = "POST";
    req.set_body("x");
    resp = conn.round_trip(req);
  });
  while (!in_handler.load()) std::this_thread::yield();

  server.shutdown(/*drain_deadline_us=*/2'000'000);
  caller.join();

  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body_string(), "slow but done");
  // The drain told the client this connection is done.
  EXPECT_EQ(resp.headers.get("Connection").value_or(""), "close");
  EXPECT_EQ(server.stats().drains, 1u);
  EXPECT_EQ(server.stats().forced_closes, 0u);
}

TEST(DrainTest, EventFrontStragglersAreCutAtTheDrainDeadline) {
  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 1;
  options.workers = 1;
  http::Server server(0, [](const http::Request&) { return http::Response{}; },
                      options);

  // A client that connects and then says nothing. Unlike the threaded
  // front it occupies no worker — the drain needn't wait for it — but it
  // is still open when the drain ends, so it is force-closed and counted.
  auto stalled = net::TcpStream::connect("127.0.0.1", server.port());
  while (server.tracked_connections() == 0) std::this_thread::yield();

  server.shutdown(/*drain_deadline_us=*/100'000);
  EXPECT_GE(server.stats().forced_closes, 1u);
  EXPECT_EQ(server.stats().drains, 1u);
}

TEST(DrainTest, EventFrontQueuedButUndispatchedRequestsGetTheCanned503) {
  // One worker, parked on a slow call; a second request is parsed and
  // waiting in the dispatch queue and must be answered 503 (not silence)
  // when the drain begins.
  std::atomic<bool> in_handler{false};
  http::ServerOptions options;
  options.front = http::FrontMode::kEvent;
  options.runtimes = 1;
  options.workers = 1;
  options.queue_depth = 4;
  http::Server server(0,
                      [&](const http::Request&) {
                        in_handler.store(true);
                        std::this_thread::sleep_for(std::chrono::milliseconds(300));
                        return http::Response{};
                      },
                      options);

  std::thread busy([&] {
    auto stream = net::TcpStream::connect("127.0.0.1", server.port());
    http::Client conn(*stream);
    http::Request req;
    req.method = "POST";
    req.set_body("x");
    (void)conn.round_trip(req);
  });
  while (!in_handler.load()) std::this_thread::yield();

  auto queued = net::TcpStream::connect("127.0.0.1", server.port());
  http::Request waiting;
  waiting.method = "POST";
  waiting.set_body("queued");
  queued->write_all(BytesView{waiting.serialize()});
  // Wait until the runtime has parsed and queued the request.
  while (server.load().queue_depth == 0) std::this_thread::yield();

  server.shutdown(/*drain_deadline_us=*/1'000'000);
  busy.join();

  http::MessageReader reader(*queued);
  const auto resp = reader.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  EXPECT_TRUE(resp->headers.has("Retry-After"));
  EXPECT_EQ(resp->headers.get("Connection").value_or(""), "close");
}

// ------------------------------------------- runtime-level drain signaling

TEST(DrainTest, RuntimeDrainMarksResponsesAndCountsOnce) {
  LoadedImagingFixture env;
  LoopbackTransport transport(env.runtime);
  ClientStub client(transport, WireFormat::kBinary, env.service(),
                    env.format_server, env.clock);

  env.runtime.set_draining(true);
  env.runtime.set_draining(true);  // idempotent: counted once
  EXPECT_TRUE(env.runtime.draining());
  client.call("fetch_image", Value::record({{"n", 1}}));
  EXPECT_EQ(env.runtime.stats().drains, 1u);
  env.runtime.set_draining(false);
  EXPECT_FALSE(env.runtime.draining());
}

}  // namespace
}  // namespace sbq::core
