// Unit tests for the PBIO substrate: formats, registry/format server, native
// encode/decode with receiver-makes-right conversion, the dynamic Value
// model, and native↔dynamic wire compatibility.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/arena.h"
#include "pbio/decode.h"
#include "pbio/encode.h"
#include "pbio/format.h"
#include "pbio/plan.h"
#include "pbio/registry.h"
#include "pbio/value.h"
#include "pbio/value_codec.h"

namespace sbq::pbio {
namespace {

// A native struct whose layout the FormatBuilder must reproduce.
struct Sensor {
  std::int32_t id;
  double reading;
  char flag;
  const char* label;
  VarArray<std::int32_t> samples;
};

FormatPtr sensor_format() {
  return FormatBuilder("sensor")
      .add_scalar("id", TypeKind::kInt32)
      .add_scalar("reading", TypeKind::kFloat64)
      .add_scalar("flag", TypeKind::kChar)
      .add_string("label")
      .add_var_array("samples", TypeKind::kInt32)
      .build();
}

struct Point {
  double x;
  double y;
  double z;
};

FormatPtr point_format() {
  return FormatBuilder("point")
      .add_scalar("x", TypeKind::kFloat64)
      .add_scalar("y", TypeKind::kFloat64)
      .add_scalar("z", TypeKind::kFloat64)
      .build();
}

struct Molecule {
  std::int32_t atom_count;
  Point center;
  VarArray<Point> atoms;
};

FormatPtr molecule_format() {
  return FormatBuilder("molecule")
      .add_scalar("atom_count", TypeKind::kInt32)
      .add_struct("center", point_format())
      .add_struct_var_array("atoms", point_format())
      .build();
}

// ---------------------------------------------------------------- formats

TEST(Format, BuilderMatchesCompilerLayout) {
  auto f = sensor_format();
  EXPECT_EQ(f->field("id")->offset, offsetof(Sensor, id));
  EXPECT_EQ(f->field("reading")->offset, offsetof(Sensor, reading));
  EXPECT_EQ(f->field("flag")->offset, offsetof(Sensor, flag));
  EXPECT_EQ(f->field("label")->offset, offsetof(Sensor, label));
  EXPECT_EQ(f->field("samples")->offset, offsetof(Sensor, samples));
  EXPECT_EQ(f->native_size, sizeof(Sensor));
}

TEST(Format, NestedStructLayout) {
  auto f = molecule_format();
  EXPECT_EQ(f->field("center")->offset, offsetof(Molecule, center));
  EXPECT_EQ(f->field("atoms")->offset, offsetof(Molecule, atoms));
  EXPECT_EQ(f->native_size, sizeof(Molecule));
}

TEST(Format, CanonicalRendering) {
  EXPECT_EQ(point_format()->canonical(), "point{x:f64,y:f64,z:f64}");
  auto f = FormatBuilder("m")
               .add_fixed_array("a", TypeKind::kInt32, 4)
               .add_var_array("b", TypeKind::kFloat32)
               .build();
  EXPECT_EQ(f->canonical(), "m{a:i32[4],b:f32[]}");
}

TEST(Format, StructuralIdStableAndDiscriminating) {
  EXPECT_EQ(point_format()->format_id(), point_format()->format_id());
  auto other = FormatBuilder("point")
                   .add_scalar("x", TypeKind::kFloat64)
                   .add_scalar("y", TypeKind::kFloat64)
                   .build();
  EXPECT_NE(point_format()->format_id(), other->format_id());
}

TEST(Format, CountsAndDepth) {
  EXPECT_EQ(point_format()->total_field_count(), 3u);
  EXPECT_EQ(point_format()->nesting_depth(), 1u);
  EXPECT_EQ(molecule_format()->total_field_count(), 3u + 3u + 3u);
  EXPECT_EQ(molecule_format()->nesting_depth(), 2u);
}

TEST(Format, BuilderRejectsBadInput) {
  EXPECT_THROW(FormatBuilder("e").build(), CodecError);
  EXPECT_THROW(FormatBuilder("d")
                   .add_scalar("x", TypeKind::kInt32)
                   .add_scalar("x", TypeKind::kInt32),
               CodecError);
  EXPECT_THROW(FormatBuilder("s").add_scalar("x", TypeKind::kString), CodecError);
  EXPECT_THROW(FormatBuilder("z").add_fixed_array("a", TypeKind::kInt32, 0), CodecError);
  EXPECT_THROW(FormatBuilder("n").add_struct("s", nullptr), CodecError);
}

TEST(Format, SerializationRoundTrips) {
  for (const auto& f : {sensor_format(), molecule_format(), point_format()}) {
    const Bytes wire = serialize_format(*f);
    FormatPtr back = deserialize_format(BytesView{wire});
    EXPECT_EQ(back->canonical(), f->canonical());
    EXPECT_EQ(back->format_id(), f->format_id());
    EXPECT_EQ(back->native_size, f->native_size);
  }
}

TEST(Format, DeserializeRejectsTrailing) {
  Bytes wire = serialize_format(*point_format());
  wire.push_back(0);
  EXPECT_THROW(deserialize_format(BytesView{wire}), CodecError);
}

// ---------------------------------------------------------------- registry

TEST(Registry, RegisterAndLookup) {
  FormatRegistry reg;
  const FormatId id = reg.register_format(point_format());
  ASSERT_NE(reg.lookup(id), nullptr);
  EXPECT_EQ(reg.lookup(id)->name, "point");
  EXPECT_EQ(reg.lookup(12345), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(FormatServerTest, FetchUnknownThrows) {
  FormatServer server;
  EXPECT_THROW(server.fetch(42), CodecError);
  EXPECT_EQ(server.stats().misses, 1u);
}

TEST(FormatServerTest, CacheFetchesOncePerFormat) {
  auto server = std::make_shared<FormatServer>();
  FormatCache sender(server);
  FormatCache receiver(server);

  const FormatId id = sender.announce(molecule_format());
  EXPECT_TRUE(sender.contains(id));
  EXPECT_FALSE(receiver.contains(id));

  // First resolve: server round trip with nonzero description bytes.
  FormatPtr f1 = receiver.resolve(id);
  EXPECT_GT(receiver.last_fetch_bytes(), 0u);
  EXPECT_EQ(receiver.miss_count(), 1u);

  // Second resolve: pure cache hit.
  FormatPtr f2 = receiver.resolve(id);
  EXPECT_EQ(receiver.last_fetch_bytes(), 0u);
  EXPECT_EQ(receiver.hit_count(), 1u);
  EXPECT_EQ(f1->canonical(), f2->canonical());
  EXPECT_EQ(server->stats().lookups, 1u);
}

TEST(FormatServerTest, RegistrationCostGrowsWithNesting) {
  // The paper: first-message cost "becomes significant only for very deeply
  // nested structures". Deeper formats must serialize larger.
  FormatPtr flat = point_format();
  FormatPtr deep = point_format();
  for (int i = 0; i < 8; ++i) {
    deep = FormatBuilder("nest" + std::to_string(i))
               .add_scalar("v", TypeKind::kInt32)
               .add_struct("inner", deep)
               .build();
  }
  EXPECT_GT(serialize_format(*deep).size(), 4 * serialize_format(*flat).size());
}

// ---------------------------------------------------------------- native codec

TEST(NativeCodec, FlatRoundTrip) {
  const std::int32_t samples[] = {5, -6, 7};
  Sensor s{42, 3.5, 'y', "cam-1", {3, samples}};
  auto f = sensor_format();

  const Bytes wire = encode_message(&s, *f);
  Arena arena;
  const auto* back = decode_message_as<Sensor>(BytesView{wire}, *f, *f, arena);

  EXPECT_EQ(back->id, 42);
  EXPECT_DOUBLE_EQ(back->reading, 3.5);
  EXPECT_EQ(back->flag, 'y');
  EXPECT_STREQ(back->label, "cam-1");
  ASSERT_EQ(back->samples.count, 3u);
  EXPECT_EQ(back->samples.data[0], 5);
  EXPECT_EQ(back->samples.data[1], -6);
  EXPECT_EQ(back->samples.data[2], 7);
}

TEST(NativeCodec, NestedStructRoundTrip) {
  const Point atoms[] = {{1, 2, 3}, {4, 5, 6}};
  Molecule m{2, {0.5, 0.5, 0.5}, {2, atoms}};
  auto f = molecule_format();

  const Bytes wire = encode_message(&m, *f);
  Arena arena;
  const auto* back = decode_message_as<Molecule>(BytesView{wire}, *f, *f, arena);

  EXPECT_EQ(back->atom_count, 2);
  EXPECT_DOUBLE_EQ(back->center.y, 0.5);
  ASSERT_EQ(back->atoms.count, 2u);
  EXPECT_DOUBLE_EQ(back->atoms.data[1].z, 6.0);
}

TEST(NativeCodec, ForeignEndianSenderIsConverted) {
  const std::int32_t samples[] = {100, 200};
  Sensor s{7, -1.25, 'n', "be", {2, samples}};
  auto f = sensor_format();

  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes wire = encode_message(&s, *f, foreign);
  Arena arena;
  const auto* back = decode_message_as<Sensor>(BytesView{wire}, *f, *f, arena);
  EXPECT_EQ(back->id, 7);
  EXPECT_DOUBLE_EQ(back->reading, -1.25);
  ASSERT_EQ(back->samples.count, 2u);
  EXPECT_EQ(back->samples.data[1], 200);
}

TEST(NativeCodec, WireBytesDifferAcrossByteOrders) {
  Sensor s{0x01020304, 1.0, 'x', "", {0, nullptr}};
  auto f = sensor_format();
  const Bytes le = encode_message(&s, *f, ByteOrder::kLittle);
  const Bytes be = encode_message(&s, *f, ByteOrder::kBig);
  EXPECT_NE(le, be);
}

TEST(NativeCodec, ReceiverMakesRightFieldSubset) {
  // Receiver only knows id and reading; extra sender fields are skipped.
  struct SensorLite {
    std::int32_t id;
    double reading;
  };
  auto lite = FormatBuilder("sensor_lite")
                  .add_scalar("id", TypeKind::kInt32)
                  .add_scalar("reading", TypeKind::kFloat64)
                  .build();
  const std::int32_t samples[] = {1, 2, 3, 4};
  Sensor s{9, 2.75, 'q', "full", {4, samples}};
  const Bytes wire = encode_message(&s, *sensor_format());

  Arena arena;
  const auto* back = decode_message_as<SensorLite>(BytesView{wire}, *sensor_format(),
                                                   *lite, arena);
  EXPECT_EQ(back->id, 9);
  EXPECT_DOUBLE_EQ(back->reading, 2.75);
}

TEST(NativeCodec, MissingFieldsAreZeroFilled) {
  // Sender has fewer fields than the receiver expects; the decoder pads with
  // zeroes (the quality layer's legacy-compatibility mechanism).
  struct IdOnly {
    std::int32_t id;
  };
  auto id_only = FormatBuilder("id_only").add_scalar("id", TypeKind::kInt32).build();
  IdOnly src{31};
  const Bytes wire = encode_message(&src, *id_only);

  Arena arena;
  const auto* back = decode_message_as<Sensor>(BytesView{wire}, *id_only,
                                               *sensor_format(), arena);
  EXPECT_EQ(back->id, 31);
  EXPECT_DOUBLE_EQ(back->reading, 0.0);
  EXPECT_EQ(back->samples.count, 0u);
  // String fields the sender omitted decode as null (caller-visible "empty").
  EXPECT_EQ(back->label, nullptr);
}

TEST(NativeCodec, NumericKindConversion) {
  struct Narrow {
    std::int32_t v;
    float f;
  };
  struct Wide {
    std::int64_t v;
    double f;
  };
  auto narrow = FormatBuilder("n")
                    .add_scalar("v", TypeKind::kInt32)
                    .add_scalar("f", TypeKind::kFloat32)
                    .build();
  auto wide = FormatBuilder("n")
                  .add_scalar("v", TypeKind::kInt64)
                  .add_scalar("f", TypeKind::kFloat64)
                  .build();
  Narrow src{-77, 1.5F};
  const Bytes wire = encode_message(&src, *narrow);
  Arena arena;
  const auto* back = decode_message_as<Wide>(BytesView{wire}, *narrow, *wide, arena);
  EXPECT_EQ(back->v, -77);
  EXPECT_DOUBLE_EQ(back->f, 1.5);
}

TEST(NativeCodec, FixedStructArrays) {
  struct Segment {
    Point endpoints[2];
    std::int32_t id;
  };
  auto f = FormatBuilder("segment")
               .add_struct_fixed_array("endpoints", point_format(), 2)
               .add_scalar("id", TypeKind::kInt32)
               .build();
  EXPECT_EQ(f->native_size, sizeof(Segment));
  EXPECT_EQ(f->field("endpoints")->offset, offsetof(Segment, endpoints));
  EXPECT_EQ(f->canonical(), "segment{endpoints:point{x:f64,y:f64,z:f64}[2],id:i32}");

  Segment s{{{1, 2, 3}, {4, 5, 6}}, 17};
  const Bytes wire = encode_message(&s, *f);
  Arena arena;
  const auto* back = decode_message_as<Segment>(BytesView{wire}, *f, *f, arena);
  EXPECT_EQ(back->id, 17);
  EXPECT_DOUBLE_EQ(back->endpoints[1].z, 6.0);

  // Serialization round-trips the fixed struct array shape too.
  const FormatPtr again = deserialize_format(BytesView{serialize_format(*f)});
  EXPECT_EQ(again->canonical(), f->canonical());

  // Value path produces identical bytes.
  const Value v = Value::record(
      {{"endpoints",
        Value::array({Value::record({{"x", 1.0}, {"y", 2.0}, {"z", 3.0}}),
                      Value::record({{"x", 4.0}, {"y", 5.0}, {"z", 6.0}})})},
       {"id", 17}});
  EXPECT_EQ(encode_value_message(v, *f), wire);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *f), v);
}

TEST(NativeCodec, FixedArrays) {
  struct Fixed {
    std::int32_t tag;
    double values[4];
  };
  auto f = FormatBuilder("fixed")
               .add_scalar("tag", TypeKind::kInt32)
               .add_fixed_array("values", TypeKind::kFloat64, 4)
               .build();
  EXPECT_EQ(f->native_size, sizeof(Fixed));
  Fixed src{5, {1.0, 2.0, 3.0, 4.0}};
  const Bytes wire = encode_message(&src, *f);
  Arena arena;
  const auto* back = decode_message_as<Fixed>(BytesView{wire}, *f, *f, arena);
  EXPECT_EQ(back->tag, 5);
  EXPECT_DOUBLE_EQ(back->values[3], 4.0);
}

TEST(NativeCodec, EmptyVarArrayAndEmptyString) {
  Sensor s{1, 0.0, 'z', "", {0, nullptr}};
  auto f = sensor_format();
  const Bytes wire = encode_message(&s, *f);
  Arena arena;
  const auto* back = decode_message_as<Sensor>(BytesView{wire}, *f, *f, arena);
  EXPECT_EQ(back->samples.count, 0u);
  EXPECT_STREQ(back->label, "");
}

TEST(NativeCodec, NullDataWithNonzeroCountThrows) {
  Sensor s{1, 0.0, 'z', "x", {3, nullptr}};
  ByteBuffer out;
  EXPECT_THROW(encode_native(&s, *sensor_format(), out), CodecError);
}

TEST(NativeCodec, WireSizeMatchesEncoding) {
  const Point atoms[] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Molecule m{3, {0, 0, 0}, {3, atoms}};
  auto f = molecule_format();
  EXPECT_EQ(wire_size(&m, *f) + WireHeader::kSize, encode_message(&m, *f).size());
}

TEST(NativeCodec, TruncatedMessageThrows) {
  Sensor s{1, 2.0, 'a', "abc", {0, nullptr}};
  auto f = sensor_format();
  Bytes wire = encode_message(&s, *f);
  wire.resize(wire.size() - 2);
  Arena arena;
  EXPECT_THROW(decode_message(BytesView{wire}, *f, *f, arena), CodecError);
}

TEST(NativeCodec, HeaderValidation) {
  Sensor s{1, 2.0, 'a', "abc", {0, nullptr}};
  Bytes wire = encode_message(&s, *sensor_format());
  wire[8] = 9;  // corrupt byte-order tag
  Arena arena;
  EXPECT_THROW(decode_message(BytesView{wire}, *sensor_format(), *sensor_format(), arena),
               CodecError);
}

// ---------------------------------------------------------------- plans

TEST(Plans, FlatSameFormatCollapsesToOneBlockCopy) {
  // point{x:f64,y:f64,z:f64} is fully contiguous on both sides: the whole
  // record should compile to a single 24-byte memcpy.
  const auto plan =
      DecodePlan::compile(point_format(), point_format(), host_byte_order());
  EXPECT_EQ(plan->op_count(), 1u);
  EXPECT_EQ(plan->block_copy_bytes(), 24u);
}

TEST(Plans, PaddingBreaksTheMerge) {
  // sensor: i32 (pad) f64 char (pad) string varray — nothing merges across
  // the alignment holes and pointer fields.
  const auto plan =
      DecodePlan::compile(sensor_format(), sensor_format(), host_byte_order());
  EXPECT_GT(plan->op_count(), 1u);
}

TEST(Plans, ForeignOrderUsesConversionOps) {
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const auto plan = DecodePlan::compile(point_format(), point_format(), foreign);
  EXPECT_EQ(plan->block_copy_bytes(), 0u);  // every scalar must swap
  EXPECT_EQ(plan->op_count(), 3u);
}

TEST(Plans, ExecutesEquivalentlyToDecoder) {
  const std::int32_t samples[] = {5, -6, 7};
  Sensor s{42, 3.5, 'y', "cam-1", {3, samples}};
  const Bytes wire = encode_message(&s, *sensor_format());

  PlanCache cache;
  Arena arena;
  const auto* back = static_cast<const Sensor*>(decode_message_planned(
      BytesView{wire}, sensor_format(), sensor_format(), cache, arena));
  EXPECT_EQ(back->id, 42);
  EXPECT_STREQ(back->label, "cam-1");
  ASSERT_EQ(back->samples.count, 3u);
  EXPECT_EQ(back->samples.data[2], 7);
}

TEST(Plans, CacheCompilesOncePerTriple) {
  PlanCache cache;
  const ByteOrder host = host_byte_order();
  const ByteOrder foreign =
      host == ByteOrder::kLittle ? ByteOrder::kBig : ByteOrder::kLittle;
  (void)cache.get(point_format(), point_format(), host);
  (void)cache.get(point_format(), point_format(), host);
  (void)cache.get(point_format(), point_format(), foreign);
  (void)cache.get(sensor_format(), point_format(), host);
  EXPECT_EQ(cache.compile_count(), 3u);
  EXPECT_EQ(cache.hit_count(), 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Plans, ReceiverSubsetSkipsAndConverts) {
  struct Wide {
    std::int64_t id;  // receiver widens i32 -> i64
  };
  auto wide = FormatBuilder("wide").add_scalar("id", TypeKind::kInt64).build();
  const std::int32_t samples[] = {1, 2};
  Sensor s{-9, 1.5, 'q', "drop-me", {2, samples}};
  const Bytes wire = encode_message(&s, *sensor_format());

  PlanCache cache;
  Arena arena;
  const auto* back = static_cast<const Wide*>(decode_message_planned(
      BytesView{wire}, sensor_format(), wide, cache, arena));
  EXPECT_EQ(back->id, -9);
}

TEST(Plans, CompileRejectsShapeMismatches) {
  auto str_fmt = FormatBuilder("sensor2").add_string("id").build();
  EXPECT_THROW(DecodePlan::compile(sensor_format(), str_fmt, host_byte_order()),
               CodecError);
  EXPECT_THROW(DecodePlan::compile(nullptr, point_format(), host_byte_order()),
               CodecError);
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, ScalarAccessorsAndConversion) {
  EXPECT_EQ(Value{std::int64_t{-3}}.as_i64(), -3);
  EXPECT_EQ(Value{std::int64_t{-3}}.as_f64(), -3.0);
  EXPECT_EQ(Value{2.5}.as_i64(), 2);
  EXPECT_EQ(Value{'A'}.as_i64(), 65);
  EXPECT_EQ(Value{std::uint64_t{7}}.as_u64(), 7u);
  EXPECT_THROW((void)Value{"text"}.as_i64(), CodecError);
  EXPECT_THROW((void)Value{1.0}.as_string(), CodecError);
}

TEST(ValueTest, RecordFieldAccess) {
  Value r = Value::record({{"a", 1}, {"b", "two"}});
  EXPECT_EQ(r.field("a").as_i64(), 1);
  EXPECT_EQ(r.field("b").as_string(), "two");
  EXPECT_EQ(r.find_field("c"), nullptr);
  EXPECT_THROW((void)r.field("c"), CodecError);
  r.set_field("a", 10);
  r.set_field("c", 3.0);
  EXPECT_EQ(r.field("a").as_i64(), 10);
  EXPECT_EQ(r.field_count(), 3u);
  EXPECT_EQ(r.field_name(2), "c");
}

TEST(ValueTest, ArrayOps) {
  Value a = Value::array({1, 2});
  a.push_back(3);
  EXPECT_EQ(a.array_size(), 3u);
  EXPECT_EQ(a.at(2).as_i64(), 3);
  EXPECT_THROW((void)a.at(3), CodecError);
  EXPECT_THROW((void)Value{1}.array_size(), CodecError);
}

TEST(ValueTest, EqualityAndDebug) {
  Value a = Value::record({{"x", Value::array({1, 2})}, {"s", "hi"}});
  Value b = Value::record({{"x", Value::array({1, 2})}, {"s", "hi"}});
  Value c = Value::record({{"x", Value::array({1, 3})}, {"s", "hi"}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.to_debug_string(), "{x: [1, 2], s: \"hi\"}");
}

// ---------------------------------------------------------------- value codec

Value sample_sensor_value() {
  return Value::record({{"id", 42},
                        {"reading", 3.5},
                        {"flag", 'y'},
                        {"label", "cam-1"},
                        {"samples", Value::array({5, -6, 7})}});
}

TEST(ValueCodec, RoundTrip) {
  auto f = sensor_format();
  const Bytes wire = encode_value_message(sample_sensor_value(), *f);
  const Value back = decode_value_message(BytesView{wire}, *f);
  EXPECT_EQ(back, sample_sensor_value());
}

TEST(ValueCodec, NestedRoundTrip) {
  auto f = molecule_format();
  Value m = Value::record(
      {{"atom_count", 2},
       {"center", Value::record({{"x", 0.5}, {"y", 0.5}, {"z", 0.5}})},
       {"atoms", Value::array({Value::record({{"x", 1.0}, {"y", 2.0}, {"z", 3.0}}),
                               Value::record({{"x", 4.0}, {"y", 5.0}, {"z", 6.0}})})}});
  const Bytes wire = encode_value_message(m, *f);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *f), m);
}

TEST(ValueCodec, ForeignEndianRoundTrip) {
  auto f = sensor_format();
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes wire = encode_value_message(sample_sensor_value(), *f, foreign);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *f), sample_sensor_value());
}

TEST(ValueCodec, NativeAndValuePathsProduceIdenticalBytes) {
  const std::int32_t samples[] = {5, -6, 7};
  Sensor s{42, 3.5, 'y', "cam-1", {3, samples}};
  auto f = sensor_format();
  EXPECT_EQ(encode_message(&s, *f), encode_value_message(sample_sensor_value(), *f));
}

TEST(ValueCodec, NativeDecodesValueEncoded) {
  auto f = sensor_format();
  const Bytes wire = encode_value_message(sample_sensor_value(), *f);
  Arena arena;
  const auto* back = decode_message_as<Sensor>(BytesView{wire}, *f, *f, arena);
  EXPECT_EQ(back->id, 42);
  EXPECT_STREQ(back->label, "cam-1");
  ASSERT_EQ(back->samples.count, 3u);
  EXPECT_EQ(back->samples.data[2], 7);
}

TEST(ValueCodec, MissingFieldThrows) {
  Value incomplete = Value::record({{"id", 1}});
  ByteBuffer out;
  EXPECT_THROW(encode_value(incomplete, *sensor_format(), out), CodecError);
}

TEST(ValueCodec, FixedArrayCountEnforced) {
  auto f = FormatBuilder("fx").add_fixed_array("a", TypeKind::kInt32, 3).build();
  Value bad = Value::record({{"a", Value::array({1, 2})}});
  ByteBuffer out;
  EXPECT_THROW(encode_value(bad, *f, out), CodecError);
}

TEST(ValueCodec, ZeroValueSkeleton) {
  const Value z = zero_value(*sensor_format());
  EXPECT_EQ(z.field("id").as_i64(), 0);
  EXPECT_EQ(z.field("label").as_string(), "");
  EXPECT_EQ(z.field("samples").array_size(), 0u);
  // Skeleton must be encodable as-is.
  ByteBuffer out;
  encode_value(z, *sensor_format(), out);
  EXPECT_GT(out.size(), 0u);
}

TEST(ValueCodec, ProjectionCopiesCommonAndPadsRest) {
  auto small = FormatBuilder("sensor_small")
                   .add_scalar("id", TypeKind::kInt32)
                   .add_scalar("extra", TypeKind::kFloat64)
                   .build();
  const Value projected = project_value(sample_sensor_value(), *small);
  EXPECT_EQ(projected.field("id").as_i64(), 42);
  EXPECT_DOUBLE_EQ(projected.field("extra").as_f64(), 0.0);
  EXPECT_EQ(projected.field_count(), 2u);
}

TEST(ValueCodec, ProjectionRoundTripThroughSmallerType) {
  // Full -> small (send) -> full (receive, zero padded): the SOAP-binQ
  // quality-file flow for legacy applications.
  auto full = sensor_format();
  auto small = FormatBuilder("sensor_small")
                   .add_scalar("id", TypeKind::kInt32)
                   .add_scalar("reading", TypeKind::kFloat64)
                   .build();
  const Value sent = project_value(sample_sensor_value(), *small);
  const Bytes wire = encode_value_message(sent, *small);
  const Value received = decode_value_message(BytesView{wire}, *small);
  const Value padded = project_value(received, *full);
  EXPECT_EQ(padded.field("id").as_i64(), 42);
  EXPECT_DOUBLE_EQ(padded.field("reading").as_f64(), 3.5);
  EXPECT_EQ(padded.field("label").as_string(), "");
  EXPECT_EQ(padded.field("samples").array_size(), 0u);
}

}  // namespace
}  // namespace sbq::pbio
