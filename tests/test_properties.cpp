// Property-based tests: randomly generated PBIO formats and values pushed
// through every codec path, checking roundtrip and algebraic laws:
//
//   decode(encode(v))            == v          (binary, both byte orders)
//   xml_read(xml_write(v))       == v          (XML codec, both styles)
//   project(v, F)                is encodable under F
//   project(project(v, S), F)    zero-pads exactly the fields F \ S
//   zero_value(F)                is a fixed point of project(·, F)
//
// Each seed generates a different format shape (nesting, arrays, strings,
// char blobs) and a matching random value.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pbio/decode.h"
#include "pbio/encode.h"
#include "pbio/plan.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "xml/dom.h"

namespace sbq::pbio {
namespace {

using sbq::Rng;

/// Random scalar kind (no struct/string — handled separately).
TypeKind random_scalar_kind(Rng& rng) {
  static constexpr TypeKind kinds[] = {
      TypeKind::kInt32,   TypeKind::kInt64,   TypeKind::kUInt32,
      TypeKind::kUInt64,  TypeKind::kFloat32, TypeKind::kFloat64,
      TypeKind::kChar,
  };
  return kinds[rng.next_below(std::size(kinds))];
}

FormatPtr random_format(Rng& rng, int depth_budget, int id = 0) {
  FormatBuilder builder("fmt_d" + std::to_string(depth_budget) + "_" +
                        std::to_string(id));
  const int field_count = static_cast<int>(rng.uniform_int(1, 5));
  for (int f = 0; f < field_count; ++f) {
    const std::string name = "f" + std::to_string(f);
    const double roll = rng.next_double();
    if (roll < 0.15) {
      builder.add_string(name);
    } else if (roll < 0.30) {
      builder.add_var_array(name, random_scalar_kind(rng));
    } else if (roll < 0.40) {
      builder.add_fixed_array(name, random_scalar_kind(rng),
                              static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    } else if (roll < 0.55 && depth_budget > 0) {
      FormatPtr sub = random_format(rng, depth_budget - 1, f);
      const double shape = rng.next_double();
      if (shape < 0.4) {
        builder.add_struct(name, std::move(sub));
      } else if (shape < 0.8) {
        builder.add_struct_var_array(name, std::move(sub));
      } else {
        builder.add_struct_fixed_array(
            name, std::move(sub), static_cast<std::uint32_t>(rng.uniform_int(1, 3)));
      }
    } else {
      builder.add_scalar(name, random_scalar_kind(rng));
    }
  }
  return builder.build();
}

Value random_scalar(Rng& rng, TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32:
      return Value{static_cast<std::int64_t>(
          static_cast<std::int32_t>(rng.next_u64()))};
    case TypeKind::kInt64:
      return Value{static_cast<std::int64_t>(rng.next_u64())};
    case TypeKind::kUInt32:
      return Value{static_cast<std::uint64_t>(static_cast<std::uint32_t>(rng.next_u64()))};
    case TypeKind::kUInt64:
      return Value{rng.next_u64()};
    case TypeKind::kFloat32:
      // Values exactly representable in float32 so roundtrips are exact.
      return Value{static_cast<double>(static_cast<float>(rng.uniform(-1e6, 1e6)))};
    case TypeKind::kFloat64:
      return Value{rng.uniform(-1e12, 1e12)};
    case TypeKind::kChar:
      return Value{static_cast<char>(rng.uniform_int(0, 127))};
    default:
      throw CodecError("not a scalar");
  }
}

std::string random_text(Rng& rng) {
  // Includes XML-hostile characters to stress escaping.
  static constexpr char alphabet[] =
      "abcXYZ012 <>&\"'\t\n_-#;:[]{}";
  std::string out;
  const int len = static_cast<int>(rng.uniform_int(0, 24));
  for (int i = 0; i < len; ++i) {
    out += alphabet[rng.next_below(std::size(alphabet) - 1)];
  }
  return out;
}

Value random_value(Rng& rng, const FormatDesc& format) {
  Value record = Value::empty_record();
  for (const FieldDesc& field : format.fields) {
    const std::uint32_t count = field.arity == Arity::kFixedArray
                                    ? field.fixed_count
                                    : static_cast<std::uint32_t>(rng.uniform_int(0, 6));
    switch (field.arity) {
      case Arity::kScalar:
        if (field.kind == TypeKind::kString) {
          record.set_field(field.name, Value{random_text(rng)});
        } else if (field.kind == TypeKind::kStruct) {
          record.set_field(field.name, random_value(rng, *field.struct_format));
        } else {
          record.set_field(field.name, random_scalar(rng, field.kind));
        }
        break;
      case Arity::kFixedArray:
      case Arity::kVarArray: {
        if (field.kind == TypeKind::kChar) {
          // Bulk char arrays as strings (binary bytes allowed).
          std::string blob;
          for (std::uint32_t i = 0; i < count; ++i) {
            blob += static_cast<char>(rng.next_below(256));
          }
          record.set_field(field.name, Value{std::move(blob)});
          break;
        }
        Value array = Value::empty_array();
        for (std::uint32_t i = 0; i < count; ++i) {
          if (field.kind == TypeKind::kStruct) {
            array.push_back(random_value(rng, *field.struct_format));
          } else {
            array.push_back(random_scalar(rng, field.kind));
          }
        }
        record.set_field(field.name, std::move(array));
        break;
      }
    }
  }
  return record;
}

class CodecProperties : public ::testing::TestWithParam<int> {};

TEST_P(CodecProperties, BinaryRoundTripHostOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const FormatPtr format = random_format(rng, 2);
  const Value v = random_value(rng, *format);
  const Bytes wire = encode_value_message(v, *format);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *format), v)
      << "format: " << format->canonical();
}

TEST_P(CodecProperties, BinaryRoundTripForeignOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const FormatPtr format = random_format(rng, 2);
  const Value v = random_value(rng, *format);
  const ByteOrder foreign = host_byte_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes wire = encode_value_message(v, *format, foreign);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *format), v)
      << "format: " << format->canonical();
}

TEST_P(CodecProperties, XmlRoundTripBothStyles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const FormatPtr format = random_format(rng, 2);
  const Value v = random_value(rng, *format);
  for (const bool typed : {false, true}) {
    const std::string xml =
        soap::value_to_xml(v, *format, "doc", soap::XmlStyle{.typed = typed});
    const auto dom = xml::parse_document(xml);
    EXPECT_EQ(soap::value_from_xml(*dom, *format), v)
        << "typed=" << typed << " format: " << format->canonical();
  }
}

TEST_P(CodecProperties, FormatSerializationRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const FormatPtr format = random_format(rng, 3);
  const FormatPtr back = deserialize_format(BytesView{serialize_format(*format)});
  EXPECT_EQ(back->canonical(), format->canonical());
  EXPECT_EQ(back->format_id(), format->format_id());
  EXPECT_EQ(back->native_size, format->native_size);
  EXPECT_EQ(back->native_align, format->native_align);
}

TEST_P(CodecProperties, ProjectionLaws) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const FormatPtr full = random_format(rng, 2);
  const Value v = random_value(rng, *full);

  // Projection onto the same format preserves encodability and all fields.
  const Value same = project_value(v, *full);
  ByteBuffer out;
  encode_value(same, *full, out);
  EXPECT_EQ(same, v) << full->canonical();

  // Projection onto a subset format keeps shared top-level fields.
  if (full->fields.size() > 1) {
    FormatBuilder sub_builder("sub");
    const FieldDesc& keep = full->fields.front();
    switch (keep.arity) {
      case Arity::kScalar:
        if (keep.kind == TypeKind::kString) {
          sub_builder.add_string(keep.name);
        } else if (keep.kind == TypeKind::kStruct) {
          sub_builder.add_struct(keep.name, keep.struct_format);
        } else {
          sub_builder.add_scalar(keep.name, keep.kind);
        }
        break;
      case Arity::kFixedArray:
        if (keep.kind == TypeKind::kStruct) {
          sub_builder.add_struct_fixed_array(keep.name, keep.struct_format,
                                             keep.fixed_count);
        } else {
          sub_builder.add_fixed_array(keep.name, keep.kind, keep.fixed_count);
        }
        break;
      case Arity::kVarArray:
        if (keep.kind == TypeKind::kStruct) {
          sub_builder.add_struct_var_array(keep.name, keep.struct_format);
        } else {
          sub_builder.add_var_array(keep.name, keep.kind);
        }
        break;
    }
    const FormatPtr sub = sub_builder.build();
    const Value projected = project_value(v, *sub);
    EXPECT_EQ(projected.field(keep.name), v.field(keep.name));
    // And the projection must be encodable under the subset format.
    ByteBuffer sub_out;
    encode_value(projected, *sub, sub_out);

    // Lifting back: shared field survives, others are zero.
    const Value lifted = project_value(projected, *full);
    EXPECT_EQ(lifted.field(keep.name), v.field(keep.name));
    const Value zeros = zero_value(*full);
    for (std::size_t i = 1; i < full->fields.size(); ++i) {
      EXPECT_EQ(lifted.field(full->fields[i].name),
                zeros.field(full->fields[i].name));
    }
  }
}

TEST_P(CodecProperties, ZeroValueIsProjectionFixedPoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const FormatPtr format = random_format(rng, 2);
  const Value zeros = zero_value(*format);
  EXPECT_EQ(project_value(zeros, *format), zeros);
  // And it round-trips the wire.
  const Bytes wire = encode_value_message(zeros, *format);
  EXPECT_EQ(decode_value_message(BytesView{wire}, *format), zeros);
}

TEST_P(CodecProperties, PlannedDecodeMatchesInterpretive) {
  // The compiled-plan decoder must be bit-equivalent to the interpretive
  // one: decode the same payload both ways, re-encode both records, and
  // compare the bytes. Exercised with matching and with differing
  // sender/receiver formats, in both byte orders.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const FormatPtr sender = random_format(rng, 2);
  const Value v = random_value(rng, *sender);

  // A receiver that drops the last field (when there is more than one)
  // exercises skip paths.
  FormatPtr receiver = sender;
  if (sender->fields.size() > 1 && rng.chance(0.5)) {
    FormatBuilder rb("recv");
    for (std::size_t i = 0; i + 1 < sender->fields.size(); ++i) {
      const FieldDesc& f = sender->fields[i];
      switch (f.arity) {
        case Arity::kScalar:
          if (f.kind == TypeKind::kString) rb.add_string(f.name);
          else if (f.kind == TypeKind::kStruct) rb.add_struct(f.name, f.struct_format);
          else rb.add_scalar(f.name, f.kind);
          break;
        case Arity::kFixedArray:
          if (f.kind == TypeKind::kStruct) {
            rb.add_struct_fixed_array(f.name, f.struct_format, f.fixed_count);
          } else {
            rb.add_fixed_array(f.name, f.kind, f.fixed_count);
          }
          break;
        case Arity::kVarArray:
          if (f.kind == TypeKind::kStruct) {
            rb.add_struct_var_array(f.name, f.struct_format);
          } else {
            rb.add_var_array(f.name, f.kind);
          }
          break;
      }
    }
    receiver = rb.build();
  }

  for (const ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    ByteBuffer payload_buf;
    encode_value(v, *sender, payload_buf, order);
    const BytesView payload = payload_buf.view();

    Arena arena_a;
    void* interpreted = decode_payload(payload, order, *sender, *receiver, arena_a);
    Arena arena_b;
    const PlanPtr plan = DecodePlan::compile(sender, receiver, order);
    void* planned = plan->execute(payload, arena_b);

    ByteBuffer re_a;
    encode_native(interpreted, *receiver, re_a);
    ByteBuffer re_b;
    encode_native(planned, *receiver, re_b);
    EXPECT_EQ(re_a.bytes(), re_b.bytes())
        << "sender: " << sender->canonical()
        << "\nreceiver: " << receiver->canonical()
        << "\norder: " << static_cast<int>(order);
  }
}

TEST_P(CodecProperties, TruncatedWirePayloadsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  const FormatPtr format = random_format(rng, 2);
  const Value v = random_value(rng, *format);
  const Bytes wire = encode_value_message(v, *format);
  // Every strict prefix must either throw CodecError or be rejected — no
  // UB, no silent success with different content.
  for (std::size_t cut = 0; cut < wire.size();
       cut += 1 + wire.size() / 23) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    try {
      const Value decoded = decode_value_message(BytesView{prefix}, *format);
      ADD_FAILURE() << "prefix of " << cut << "/" << wire.size()
                    << " bytes decoded successfully";
    } catch (const CodecError&) {
      // expected
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperties, ::testing::Range(1, 33));

}  // namespace
}  // namespace sbq::pbio
