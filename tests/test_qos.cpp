// Unit tests for the quality layer: RTT estimation, quality files,
// hysteresis policy, and the quality manager.
#include <gtest/gtest.h>

#include <limits>

#include "pbio/format.h"
#include "qos/manager.h"
#include "qos/policy.h"
#include "qos/quality_file.h"
#include "qos/rtt.h"

namespace sbq::qos {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

// ---------------------------------------------------------------- RTT

TEST(Rtt, FirstSampleInitializes) {
  EwmaEstimator est;
  EXPECT_FALSE(est.has_sample());
  est.update(1000.0);
  EXPECT_DOUBLE_EQ(est.value_us(), 1000.0);
}

TEST(Rtt, ExponentialAverageWithPaperAlpha) {
  // R = 0.875 * R + 0.125 * M
  EwmaEstimator est(0.875);
  est.update(1000.0);
  est.update(2000.0);
  EXPECT_DOUBLE_EQ(est.value_us(), 0.875 * 1000.0 + 0.125 * 2000.0);
}

TEST(Rtt, ConvergesTowardSteadyInput) {
  EwmaEstimator est;
  est.update(100.0);
  for (int i = 0; i < 100; ++i) est.update(900.0);
  EXPECT_NEAR(est.value_us(), 900.0, 1.0);
}

TEST(Rtt, SmoothsSpikes) {
  EwmaEstimator est;
  est.update(1000.0);
  est.update(50000.0);  // one spike
  EXPECT_LT(est.value_us(), 8000.0);
}

TEST(Rtt, ResetClears) {
  EwmaEstimator est;
  est.update(5.0);
  est.reset();
  EXPECT_FALSE(est.has_sample());
  EXPECT_DOUBLE_EQ(est.value_us(), 0.0);
}

TEST(Rtt, RejectsBadInput) {
  EXPECT_THROW(EwmaEstimator{1.5}, QosError);
  EwmaEstimator est;
  EXPECT_THROW(est.update(-1.0), QosError);
}

TEST(Rtt, SampleComputation) {
  EXPECT_DOUBLE_EQ(rtt_sample_us(1000, 3500), 2500.0);
  EXPECT_DOUBLE_EQ(rtt_sample_us(1000, 3500, 500), 2000.0);
  // Prep time larger than the raw interval clamps at zero.
  EXPECT_DOUBLE_EQ(rtt_sample_us(1000, 1200, 900), 0.0);
  EXPECT_THROW(rtt_sample_us(2000, 1000), QosError);
}

// ---------------------------------------------------------------- quality files

constexpr const char* kImagePolicy = R"(# imaging quality policy
attribute rtt_us
0      5000   - full_image
5000   20000  - half_image
20000  inf    - quarter_image
)";

TEST(QualityFileTest, ParsesRulesAndAttribute) {
  const QualityFile file = QualityFile::parse(kImagePolicy);
  EXPECT_EQ(file.attribute(), "rtt_us");
  ASSERT_EQ(file.rules().size(), 3u);
  EXPECT_EQ(file.select(100.0), "full_image");
  EXPECT_EQ(file.select(5000.0), "half_image");  // lo-inclusive
  EXPECT_EQ(file.select(19999.0), "half_image");
  EXPECT_EQ(file.select(1e9), "quarter_image");  // inf upper bound
}

TEST(QualityFileTest, DefaultAttributeName) {
  const QualityFile file = QualityFile::parse("0 inf - only_type\n");
  EXPECT_EQ(file.attribute(), "rtt_us");
}

TEST(QualityFileTest, SerializeRoundTrips) {
  const QualityFile file = QualityFile::parse(kImagePolicy);
  const QualityFile back = QualityFile::parse(file.serialize());
  EXPECT_EQ(back.attribute(), file.attribute());
  ASSERT_EQ(back.rules().size(), file.rules().size());
  EXPECT_EQ(back.select(12345.0), file.select(12345.0));
}

TEST(QualityFileTest, GapIsSelectionError) {
  const QualityFile file = QualityFile::parse("0 10 - a\n20 30 - b\n");
  EXPECT_THROW((void)file.select(15.0), QosError);
}

TEST(QualityFileTest, RejectsMalformedInput) {
  EXPECT_THROW(QualityFile::parse(""), QosError);
  EXPECT_THROW(QualityFile::parse("10 5 - inverted\n"), QosError);
  EXPECT_THROW(QualityFile::parse("0 10 - a\n5 20 - overlap\n"), QosError);
  EXPECT_THROW(QualityFile::parse("0 10 missing_dash a\n"), QosError);
  EXPECT_THROW(QualityFile::parse("x y - a\n"), ParseError);
}

// ---------------------------------------------------------------- policy

TEST(Policy, FirstSelectionIsImmediate) {
  SelectionPolicy policy(QualityFile::parse(kImagePolicy), 3);
  EXPECT_EQ(policy.select(100.0), "full_image");
  EXPECT_EQ(policy.switch_count(), 0u);
}

TEST(Policy, RequiresConsecutiveSelectionsToSwitch) {
  SelectionPolicy policy(QualityFile::parse(kImagePolicy), 3);
  EXPECT_EQ(policy.select(100.0), "full_image");
  // Two readings in the half_image interval: not yet enough.
  EXPECT_EQ(policy.select(8000.0), "full_image");
  EXPECT_EQ(policy.select(8000.0), "full_image");
  // Third consecutive: switch.
  EXPECT_EQ(policy.select(8000.0), "half_image");
  EXPECT_EQ(policy.switch_count(), 1u);
}

TEST(Policy, StreakResetsOnRevert) {
  SelectionPolicy policy(QualityFile::parse(kImagePolicy), 3);
  policy.select(100.0);
  policy.select(8000.0);
  policy.select(8000.0);
  policy.select(100.0);   // back to active interval: streak resets
  policy.select(8000.0);
  policy.select(8000.0);
  EXPECT_EQ(policy.active(), "full_image");
  EXPECT_EQ(policy.select(8000.0), "half_image");
}

TEST(Policy, ThresholdOneDisablesHysteresis) {
  SelectionPolicy policy(QualityFile::parse(kImagePolicy), 1);
  EXPECT_EQ(policy.select(100.0), "full_image");
  EXPECT_EQ(policy.select(8000.0), "half_image");
  EXPECT_EQ(policy.select(100.0), "full_image");
  EXPECT_EQ(policy.switch_count(), 2u);
}

TEST(Policy, HysteresisDampsOscillation) {
  // Alternating readings straddling a boundary: with hysteresis the type
  // never flips; without it, it flips every reading. This is the paper's
  // oscillation scenario.
  SelectionPolicy damped(QualityFile::parse(kImagePolicy), 3);
  SelectionPolicy raw(QualityFile::parse(kImagePolicy), 1);
  for (int i = 0; i < 50; ++i) {
    const double reading = (i % 2 == 0) ? 4000.0 : 6000.0;
    damped.select(reading);
    raw.select(reading);
  }
  EXPECT_EQ(damped.switch_count(), 0u);
  EXPECT_GT(raw.switch_count(), 40u);
}

TEST(Policy, RejectsBadThreshold) {
  EXPECT_THROW(SelectionPolicy(QualityFile::parse(kImagePolicy), 0), QosError);
}

// ---------------------------------------------------------------- manager

FormatPtr full_format() {
  return FormatBuilder("full_image")
      .add_scalar("width", TypeKind::kInt32)
      .add_scalar("height", TypeKind::kInt32)
      .add_string("caption")
      .build();
}

FormatPtr small_format() {
  return FormatBuilder("half_image")
      .add_scalar("width", TypeKind::kInt32)
      .add_scalar("height", TypeKind::kInt32)
      .build();
}

std::shared_ptr<QualityManager> make_manager(int threshold = 1) {
  auto qm = std::make_shared<QualityManager>(QualityFile::parse(kImagePolicy),
                                             threshold);
  qm->register_message_type("full_image", full_format());
  qm->register_message_type("half_image", small_format());
  qm->register_message_type("quarter_image", small_format());
  return qm;
}

TEST(Manager, UpdateAttributeDrivesSelection) {
  auto qm_ptr = make_manager();
  QualityManager& qm = *qm_ptr;
  qm.update_attribute("rtt_us", 100.0);
  EXPECT_EQ(qm.select().name, "full_image");
  qm.update_attribute("rtt_us", 50000.0);
  EXPECT_EQ(qm.select().name, "quarter_image");
}

TEST(Manager, ObserveRttSmoothsIntoAttribute) {
  auto qm_ptr = make_manager();
  QualityManager& qm = *qm_ptr;
  qm.observe_rtt(1000.0);
  EXPECT_DOUBLE_EQ(qm.attribute("rtt_us"), 1000.0);
  qm.observe_rtt(9000.0);
  EXPECT_DOUBLE_EQ(qm.attribute("rtt_us"), 0.875 * 1000.0 + 0.125 * 9000.0);
}

TEST(Manager, UnknownAttributeThrows) {
  auto qm_ptr = make_manager();
  QualityManager& qm = *qm_ptr;
  EXPECT_THROW((void)qm.attribute("cpu_load"), QosError);
  qm.update_attribute("cpu_load", 0.5);
  EXPECT_DOUBLE_EQ(qm.attribute("cpu_load"), 0.5);
}

TEST(Manager, UnregisteredSelectedTypeThrows) {
  QualityManager qm(QualityFile::parse(kImagePolicy), 1);
  qm.update_attribute("rtt_us", 100.0);
  EXPECT_THROW(qm.select(), QosError);
}

TEST(Manager, DefaultHandlerProjects) {
  auto qm_ptr = make_manager();
  QualityManager& qm = *qm_ptr;
  const Value full = Value::record(
      {{"width", 640}, {"height", 480}, {"caption", "andromeda"}});
  const Value reduced = qm.apply(full, qm.required_type("half_image"));
  EXPECT_EQ(reduced.field("width").as_i64(), 640);
  EXPECT_EQ(reduced.field("height").as_i64(), 480);
  EXPECT_EQ(reduced.find_field("caption"), nullptr);
}

TEST(Manager, CustomHandlerReceivesAttributes) {
  auto qm_ptr = make_manager();
  QualityManager& qm = *qm_ptr;
  double seen_rtt = -1.0;
  qm.register_message_type(
      "half_image", small_format(),
      [&](const Value& full, const pbio::FormatDesc& target,
          const AttributeMap& attrs) {
        seen_rtt = attrs.at("rtt_us");
        Value v = pbio::project_value(full, target);
        v.set_field("width", full.field("width").as_i64() / 2);
        v.set_field("height", full.field("height").as_i64() / 2);
        return v;
      });
  qm.update_attribute("rtt_us", 7777.0);
  const Value full = Value::record(
      {{"width", 640}, {"height", 480}, {"caption", "x"}});
  const Value reduced = qm.apply(full, qm.required_type("half_image"));
  EXPECT_EQ(reduced.field("width").as_i64(), 320);
  EXPECT_DOUBLE_EQ(seen_rtt, 7777.0);
}

TEST(Manager, RegisterRejectsNullFormat) {
  QualityManager qm(QualityFile::parse(kImagePolicy));
  EXPECT_THROW(qm.register_message_type("x", nullptr), QosError);
}

}  // namespace
}  // namespace sbq::qos
