// Tests for distributed ECho channels (events over SOAP-bin) and the
// attribute-driven crop quality handler.
#include <gtest/gtest.h>

#include "apps/echo/remote.h"
#include "apps/image/codec.h"
#include "apps/image/ops.h"
#include "apps/image/synth.h"
#include "apps/md/bond.h"
#include "core/transports.h"
#include "pbio/value_codec.h"

namespace sbq {
namespace {

using core::ClientStub;
using core::LoopbackTransport;
using core::ServiceRuntime;
using core::WireFormat;
using pbio::Value;

struct BridgeFixture {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SteadyTimeSource> clock =
      std::make_shared<net::SteadyTimeSource>();
  std::shared_ptr<echo::EventDomain> remote_domain =
      std::make_shared<echo::EventDomain>();
  ServiceRuntime runtime{format_server, clock};
  LoopbackTransport transport{runtime};
  ClientStub client{transport, WireFormat::kBinary, echo::bridge_service_desc(),
                    format_server, clock};

  BridgeFixture() { echo::host_event_bridge(runtime, remote_domain); }
};

TEST(RemoteEcho, SubmitReachesRemoteSinks) {
  BridgeFixture fx;
  auto channel = fx.remote_domain->create_channel("bonds", md::timestep_format());
  std::vector<std::int32_t> seen;
  channel->subscribe([&](const echo::Event& e) {
    seen.push_back(static_cast<std::int32_t>(e.value.field("index").as_i64()));
    return true;
  });

  md::BondSimulation sim;
  for (int i = 0; i < 3; ++i) {
    const int delivered = echo::submit_remote(
        fx.client, "bonds",
        echo::Event{md::timestep_format(), md::timestep_to_value(sim.step())});
    EXPECT_EQ(delivered, 1);
  }
  EXPECT_EQ(seen, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(RemoteEcho, UnknownChannelIsRpcError) {
  BridgeFixture fx;
  EXPECT_THROW(echo::submit_remote(fx.client, "ghost",
                                   echo::Event{md::bond_format(),
                                               Value::record({{"a", 1}, {"b", 2}})}),
               RpcError);
}

TEST(RemoteEcho, EventWithoutFormatRejectedLocally) {
  BridgeFixture fx;
  EXPECT_THROW(echo::submit_remote(fx.client, "bonds", echo::Event{nullptr, Value{1}}),
               RpcError);
}

TEST(RemoteEcho, FormatResolvedThroughFormatServer) {
  BridgeFixture fx;
  // A format the bridge has never seen: it must fetch the description.
  auto custom = pbio::FormatBuilder("telemetry")
                    .add_scalar("t", pbio::TypeKind::kFloat64)
                    .add_var_array("readings", pbio::TypeKind::kInt32)
                    .build();
  auto channel = fx.remote_domain->create_channel("telemetry", custom);
  Value received;
  channel->subscribe([&](const echo::Event& e) {
    received = e.value;
    return true;
  });

  const Value payload = Value::record(
      {{"t", 12.5}, {"readings", Value::array({1, 2, 3})}});
  echo::submit_remote(fx.client, "telemetry", echo::Event{custom, payload});
  EXPECT_EQ(received, payload);
  EXPECT_GE(fx.format_server->stats().lookups, 1u);
}

TEST(RemoteEcho, ForwardChannelBridgesLocalToRemote) {
  BridgeFixture fx;
  auto remote = fx.remote_domain->create_channel("frames", md::timestep_format());
  int remote_count = 0;
  remote->subscribe([&](const echo::Event&) {
    ++remote_count;
    return true;
  });

  // Local channel in the "bond server" process; every event is forwarded.
  echo::EventChannel local("frames.local", md::timestep_format());
  const std::size_t token = echo::forward_channel(local, fx.client, "frames");

  md::BondSimulation sim;
  for (int i = 0; i < 4; ++i) {
    local.submit({md::timestep_format(), md::timestep_to_value(sim.step())});
  }
  EXPECT_EQ(remote_count, 4);

  local.unsubscribe(token);
  local.submit({md::timestep_format(), md::timestep_to_value(sim.step())});
  EXPECT_EQ(remote_count, 4);  // forwarding stopped
}

TEST(RemoteEcho, DerivedChannelOnRemoteSideFilters) {
  BridgeFixture fx;
  auto all = fx.remote_domain->create_channel("all", nullptr);
  auto evens = all->derive("evens", nullptr, [](const echo::Event& e) {
    if (e.value.field("v").as_i64() % 2 != 0) return std::optional<echo::Event>{};
    return std::optional<echo::Event>{e};
  });
  int count = 0;
  evens->subscribe([&](const echo::Event&) {
    ++count;
    return true;
  });

  auto fmt = pbio::FormatBuilder("n").add_scalar("v", pbio::TypeKind::kInt32).build();
  for (int i = 0; i < 6; ++i) {
    echo::submit_remote(fx.client, "all",
                        echo::Event{fmt, Value::record({{"v", i}})});
  }
  EXPECT_EQ(count, 3);
}

// ---------------------------------------------------------------- crop handler

TEST(CropHandler, DefaultsToCenteredQuarter) {
  const image::Image frame = image::synth_star_field(
      {.width = 64, .height = 48, .star_count = 5, .seed = 2});
  const Value full = image::image_to_value(frame, *image::image_format());
  const Value out = image::crop_quality_handler(full, *image::half_image_format(), {});
  const image::Image cropped = image::image_from_value(out);
  EXPECT_EQ(cropped.width(), 32);
  EXPECT_EQ(cropped.height(), 24);
  // Content matches the centered region.
  EXPECT_EQ(cropped.at(0, 0).r, frame.at(16, 12).r);
}

TEST(CropHandler, RegionFromAttributes) {
  const image::Image frame = image::synth_star_field(
      {.width = 64, .height = 48, .star_count = 5, .seed = 2});
  const Value full = image::image_to_value(frame, *image::image_format());
  const qos::AttributeMap attrs = {
      {"roi_x", 10}, {"roi_y", 20}, {"roi_w", 8}, {"roi_h", 4}};
  const image::Image cropped = image::image_from_value(
      image::crop_quality_handler(full, *image::half_image_format(), attrs));
  EXPECT_EQ(cropped.width(), 8);
  EXPECT_EQ(cropped.height(), 4);
  EXPECT_EQ(cropped.at(0, 0).g, frame.at(10, 20).g);
}

TEST(CropHandler, OutOfRangeAttributesAreClamped) {
  const image::Image frame = image::synth_star_field(
      {.width = 32, .height = 32, .star_count = 3, .seed = 4});
  const Value full = image::image_to_value(frame, *image::image_format());
  const qos::AttributeMap attrs = {
      {"roi_x", 1000}, {"roi_y", -50}, {"roi_w", 9999}, {"roi_h", 9999}};
  const image::Image cropped = image::image_from_value(
      image::crop_quality_handler(full, *image::half_image_format(), attrs));
  EXPECT_EQ(cropped.width(), 1);    // x clamped to 31, w to 1
  EXPECT_EQ(cropped.height(), 32);  // y clamped to 0, h to 32
}

TEST(CropHandler, WorksInsideQualityManager) {
  auto qm = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse("0 inf - roi_image\n"), 1);
  qm->register_message_type("roi_image", image::half_image_format(),
                            image::crop_quality_handler);
  // The client steers the region at runtime with update_attribute — the
  // paper's per-invocation parameterization.
  qm->update_attribute("roi_x", 4);
  qm->update_attribute("roi_y", 4);
  qm->update_attribute("roi_w", 6);
  qm->update_attribute("roi_h", 6);

  const image::Image frame = image::synth_star_field(
      {.width = 16, .height = 16, .star_count = 2, .seed = 6});
  const Value full = image::image_to_value(frame, *image::image_format());
  const Value out = qm->apply(full, qm->required_type("roi_image"));
  EXPECT_EQ(image::image_from_value(out).width(), 6);
}

}  // namespace
}  // namespace sbq
