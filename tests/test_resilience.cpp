// Client-side resilience tests: circuit-breaker state machine, latency
// windows, multi-replica failover, Retry-After penalties, hedged requests,
// health-probe recovery, decorrelated retry jitter, and the hardened
// Retry-After parsing contract. See docs/resilience.md.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/client.h"
#include "core/resilience.h"
#include "core/service.h"
#include "core/transports.h"
#include "http/message.h"
#include "http/server.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/sim_clock.h"
#include "net/tcp.h"
#include "pbio/value_codec.h"
#include "qos/manager.h"
#include "qos/quality_file.h"
#include "wsdl/wsdl.h"

namespace sbq::core {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

// ------------------------------------------------------------ CircuitBreaker

std::shared_ptr<net::SimClock> sim_clock() {
  return std::make_shared<net::SimClock>();
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTripThenCooldownThenProbeCloses) {
  auto clock = sim_clock();
  BreakerOptions opts;
  opts.consecutive_failure_threshold = 3;
  opts.cooldown_us = 1'000'000;
  CircuitBreaker breaker(opts, clock);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_FALSE(breaker.record_failure());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.record_failure());  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allows());
  EXPECT_EQ(breaker.half_open_at_us(), clock->now_us() + opts.cooldown_us);

  clock->advance_us(opts.cooldown_us - 1);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock->advance_us(1);  // cool-down elapsed: half-open, no mutation needed
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows());

  EXPECT_TRUE(breaker.record_success());  // the probe closes it
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.closes(), 1u);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_EQ(breaker.half_open_at_us(), 0u);
}

TEST(CircuitBreakerTest, ErrorRateTripsWithoutAConsecutiveRun) {
  auto clock = sim_clock();
  BreakerOptions opts;
  opts.consecutive_failure_threshold = 100;  // only the rate signal may trip
  opts.error_rate_threshold = 0.5;
  opts.error_rate_min_calls = 8;
  opts.window = 16;
  CircuitBreaker breaker(opts, clock);

  // Alternate success/failure: never two failures in a row, but a 50% error
  // rate once eight outcomes are in the window.
  bool tripped = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(breaker.record_success());
    tripped = breaker.record_failure();
    if (i < 3) {
      EXPECT_FALSE(tripped);
    }
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, FailedHalfOpenProbeReopensAndRestartsTheCooldown) {
  auto clock = sim_clock();
  BreakerOptions opts;
  opts.consecutive_failure_threshold = 1;
  opts.cooldown_us = 500'000;
  CircuitBreaker breaker(opts, clock);

  EXPECT_TRUE(breaker.record_failure());
  clock->advance_us(opts.cooldown_us);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  EXPECT_TRUE(breaker.record_failure());  // probe failed: re-open (a trip)
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  clock->advance_us(opts.cooldown_us);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.record_success());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(LatencyWindowTest, PercentilesOverARingOfSamples) {
  LatencyWindow window(100);
  EXPECT_EQ(window.percentile(0.95), 0.0);  // empty: no profile yet
  for (int i = 1; i <= 100; ++i) window.record(static_cast<double>(i));
  EXPECT_EQ(window.count(), 100u);
  EXPECT_DOUBLE_EQ(window.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(window.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(window.percentile(1.0), 100.0);
  // The ring evicts the oldest samples.
  for (int i = 0; i < 100; ++i) window.record(1000.0);
  EXPECT_DOUBLE_EQ(window.percentile(0.5), 1000.0);
  EXPECT_EQ(window.count(), 100u);
}

// ------------------------------------------------- multi-replica sim fixture

FormatPtr req_format() {
  return FormatBuilder("req").add_scalar("n", TypeKind::kInt32).build();
}

FormatPtr resp_format() {
  return FormatBuilder("resp").add_scalar("n", TypeKind::kInt32).build();
}

Value echo_handler(const Value& params) {
  return Value::record({{"n", params.field("n").as_i64()}});
}

wsdl::ServiceDesc echo_service(bool idempotent = true) {
  wsdl::ServiceDesc svc;
  svc.name = "Echo";
  wsdl::OperationDesc op;
  op.name = "echo";
  op.input = req_format();
  op.output = resp_format();
  op.idempotent = idempotent;
  svc.operations.push_back(std::move(op));
  return svc;
}

/// Three replicas of the echo service on one simulated clock, each behind
/// its own SimLinkTransport with its own scripted fault injector.
struct SimReplicas {
  static constexpr std::size_t kReplicas = 3;

  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SimClock> clock = std::make_shared<net::SimClock>();
  std::vector<std::unique_ptr<ServiceRuntime>> runtimes;
  std::vector<std::shared_ptr<net::FaultInjector>> injectors;

  SimReplicas() {
    for (std::size_t i = 0; i < kReplicas; ++i) {
      auto runtime = std::make_unique<ServiceRuntime>(format_server, clock);
      runtime->register_operation("echo", req_format(), resp_format(),
                                  echo_handler);
      runtimes.push_back(std::move(runtime));
      injectors.push_back(std::make_shared<net::FaultInjector>(100 + i));
    }
  }

  std::vector<EndpointConfig> configs() {
    std::vector<EndpointConfig> out;
    for (std::size_t i = 0; i < kReplicas; ++i) {
      out.push_back({"replica-" + std::to_string(i), [this, i] {
                       auto transport = std::make_unique<SimLinkTransport>(
                           *runtimes[i], net::LinkModel(net::adsl_1mbps()),
                           clock);
                       transport->set_charge_server_cpu(false);
                       transport->set_fault_injector(injectors[i]);
                       return std::unique_ptr<Transport>(std::move(transport));
                     }});
    }
    return out;
  }

  void schedule_reset(std::size_t replica) {
    net::FaultSpec reset;
    reset.kind = net::FaultKind::kReset;
    injectors[replica]->schedule(reset);
  }
};

TEST(EndpointSetTest, ReplicasShareOneClientIdentity) {
  SimReplicas env;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.endpoint(0).stub->client_id(), set.client_id());
  EXPECT_EQ(set.endpoint(1).stub->client_id(), set.client_id());
  EXPECT_EQ(set.endpoint(2).stub->client_id(), set.client_id());
}

TEST(ResilientFailoverTest, DeadReplicaFailsOverTripsBreakerAndIsRoutedAround) {
  SimReplicas env;
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 1;
  options.breaker.cooldown_us = 2'000'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);

  // Replica 0 dies on the first exchange: without a deadline, a sim-link
  // reset surfaces immediately as a TransportError.
  env.schedule_reset(0);
  CallOptions opts;
  opts.retry.max_attempts = 3;

  const Value result = stub.call("echo", Value::record({{"n", 7}}), opts);
  EXPECT_EQ(result.field("n").as_i64(), 7);
  EXPECT_EQ(stub.stats().calls, 1u);
  EXPECT_EQ(stub.stats().retries, 1u);
  EXPECT_EQ(stub.stats().failovers, 1u);
  EXPECT_EQ(stub.stats().breaker_trips, 1u);
  EXPECT_NE(stub.last_endpoint(), 0u);

  const auto snaps = set.snapshots();
  EXPECT_EQ(snaps[0].breaker, BreakerState::kOpen);
  EXPECT_EQ(snaps[0].breaker_trips, 1u);
  EXPECT_EQ(snaps[0].stats.faults_injected, 1u);

  // While the breaker is open the dead replica sees no more user calls.
  for (int i = 0; i < 5; ++i) {
    stub.call("echo", Value::record({{"n", i}}), opts);
  }
  EXPECT_EQ(set.snapshots()[0].stats.calls, 1u);
  EXPECT_EQ(stub.stats().failovers, 1u);  // no further failovers needed
}

TEST(ResilientFailoverTest, HealthProbeClosesTheBreakerWithoutUserCalls) {
  SimReplicas env;
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 1;
  options.breaker.cooldown_us = 1'000'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);

  env.schedule_reset(0);
  CallOptions opts;
  opts.retry.max_attempts = 2;
  stub.call("echo", Value::record({{"n", 1}}), opts);
  ASSERT_EQ(set.snapshots()[0].breaker, BreakerState::kOpen);

  // Before the cool-down nothing is probed.
  stub.pump_probes();
  EXPECT_EQ(stub.stats().probes, 0u);

  // After the cool-down the half-open endpoint is probed (a GET through the
  // format-announce path), which closes the breaker without burning a call.
  env.clock->advance_us(options.breaker.cooldown_us);
  stub.pump_probes();
  EXPECT_EQ(stub.stats().probes, 1u);
  EXPECT_EQ(stub.stats().probe_failures, 0u);
  EXPECT_EQ(stub.stats().breaker_closes, 1u);
  const auto snaps = set.snapshots();
  EXPECT_EQ(snaps[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(snaps[0].probes, 1u);
  EXPECT_EQ(snaps[0].breaker_closes, 1u);
  EXPECT_EQ(snaps[0].stats.calls, 1u);  // probe burned no user call
}

TEST(ResilientFailoverTest, AllBreakersOpenStillRecoversThroughHalfOpen) {
  SimReplicas env;
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 1;
  options.breaker.cooldown_us = 50'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);

  // Every replica eats a reset: first call fails all three and trips all
  // three breakers (retry budget 3 attempts = one per replica).
  for (std::size_t i = 0; i < SimReplicas::kReplicas; ++i) {
    env.schedule_reset(i);
  }
  CallOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_us = 10'000;
  EXPECT_THROW(stub.call("echo", Value::record({{"n", 1}}), opts),
               TransportError);
  for (const auto& snap : set.snapshots()) {
    EXPECT_EQ(snap.breaker, BreakerState::kOpen);
  }

  // The next call's backoff waits carry the clock past the cool-down; the
  // half-open gate admits the attempt and the set heals.
  const Value result = stub.call("echo", Value::record({{"n", 2}}), opts);
  EXPECT_EQ(result.field("n").as_i64(), 2);
  EXPECT_GE(stub.stats().breaker_closes + stub.stats().probes, 1u);
}

// --------------------------------------------------- Retry-After penalties

/// A replica that sheds everything with the canned 503.
class ShedTransport final : public Transport {
 public:
  explicit ShedTransport(std::uint64_t retry_after_s)
      : retry_after_s_(retry_after_s) {}
  http::Response round_trip(const http::Request&) override {
    return http::make_shed_response(retry_after_s_);
  }

 private:
  std::uint64_t retry_after_s_;
};

TEST(ResilientShedTest, RetryAfterHintPenalizesTheEndpointInSelection) {
  SimReplicas env;
  auto configs = env.configs();
  // Replace replica 0 with a shedding server advertising Retry-After: 1.
  configs[0].transport_factory = [] {
    return std::unique_ptr<Transport>(std::make_unique<ShedTransport>(1));
  };
  EndpointSet set(configs, WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock);
  ResilientStub stub(set);

  CallOptions opts;
  opts.retry.max_attempts = 2;
  const Value result = stub.call("echo", Value::record({{"n", 3}}), opts);
  EXPECT_EQ(result.field("n").as_i64(), 3);
  EXPECT_EQ(stub.stats().sheds, 1u);
  EXPECT_EQ(stub.stats().failovers, 1u);
  EXPECT_EQ(stub.stats().breaker_trips, 0u);  // a shed is not a broken link

  auto snaps = set.snapshots();
  EXPECT_EQ(snaps[0].breaker, BreakerState::kClosed);
  EXPECT_GT(snaps[0].penalized_until_us, env.clock->now_us());

  // Until the penalty expires the shedding replica is not selected.
  stub.call("echo", Value::record({{"n", 4}}), opts);
  EXPECT_EQ(set.snapshots()[0].stats.calls, 1u);
  EXPECT_EQ(stub.stats().sheds, 1u);
}

// ------------------------------------------------------------------ hedging

TEST(ResilientHedgeTest, SlowPrimaryIsHedgedToTheNextBestReplica) {
  SimReplicas env;
  ResilienceOptions options;
  options.hedge_enabled = true;
  options.hedge_min_samples = 4;
  options.hedge_percentile = 0.95;
  options.hedge_factor = 2.0;
  options.hedge_min_delay_us = 1'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);

  // Warm up: the first rounds spread across the fresh replicas, then stick
  // with the lowest-latency one (replica 0 on identical links).
  for (int i = 0; i < 8; ++i) {
    stub.call("echo", Value::record({{"n", i}}));
  }
  ASSERT_GE(set.endpoint(0).latency.count(), options.hedge_min_samples);
  EXPECT_EQ(stub.stats().hedges, 0u);

  // Replica 0 browns out: a 5 s stall on its next exchange. The hedge
  // boundary (p95 × 2 of its own profile) fires long before that, cancels
  // the straggler, and the next-best replica answers.
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.stall_us = 5'000'000;
  env.injectors[0]->schedule(stall);

  const std::uint64_t t0 = env.clock->now_us();
  const Value result = stub.call("echo", Value::record({{"n", 42}}));
  const std::uint64_t elapsed = env.clock->now_us() - t0;

  EXPECT_EQ(result.field("n").as_i64(), 42);
  EXPECT_EQ(stub.stats().hedges, 1u);
  EXPECT_EQ(stub.stats().hedge_wins, 1u);
  EXPECT_NE(stub.last_endpoint(), 0u);
  EXPECT_LT(elapsed, 1'000'000u);  // nowhere near the 5 s stall
  // A hedge-boundary timeout is not evidence against the replica.
  EXPECT_EQ(stub.stats().breaker_trips, 0u);
  EXPECT_EQ(set.snapshots()[0].breaker, BreakerState::kClosed);
}

TEST(ResilientHedgeTest, NonIdempotentCallsAreNeverHedged) {
  SimReplicas env;
  ResilienceOptions options;
  options.hedge_enabled = true;
  options.hedge_min_samples = 1;
  EndpointSet set(env.configs(), WireFormat::kBinary,
                  echo_service(/*idempotent=*/false), env.format_server,
                  env.clock, options);
  ResilientStub stub(set);

  stub.call("echo", Value::record({{"n", 1}}));
  net::FaultSpec stall;
  stall.kind = net::FaultKind::kStall;
  stall.stall_us = 200'000;
  env.injectors[0]->schedule(stall);

  // The stalled call simply takes its time: no hedge, no failover.
  const Value result = stub.call("echo", Value::record({{"n", 2}}));
  EXPECT_EQ(result.field("n").as_i64(), 2);
  EXPECT_EQ(stub.stats().hedges, 0u);
  EXPECT_EQ(stub.stats().failovers, 0u);
}

// ----------------------------------------------------- QoS fault coupling

constexpr const char* kEchoPolicy =
    "attribute rtt_us\n"
    "0 inf - resp\n";

TEST(ResilientQualityTest, BreakerTripsAndProbesFeedTheQualityLoop) {
  SimReplicas env;
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 1;
  options.breaker.cooldown_us = 1'000'000;
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);
  auto quality = std::make_shared<qos::QualityManager>(
      qos::QualityFile::parse(kEchoPolicy), /*switch_threshold=*/1);
  quality->register_message_type("resp", resp_format());
  stub.set_quality_manager(quality);

  env.schedule_reset(0);
  CallOptions opts;
  opts.retry.max_attempts = 2;
  stub.call("echo", Value::record({{"n", 1}}), opts);

  // The per-attempt fault and the breaker trip both feed observe_fault.
  EXPECT_EQ(quality->fault_count(), 2u);
  EXPECT_EQ(quality->probe_count(), 0u);

  env.clock->advance_us(options.breaker.cooldown_us);
  stub.pump_probes();
  EXPECT_EQ(quality->probe_count(), 1u);
  EXPECT_EQ(set.snapshots()[0].breaker, BreakerState::kClosed);
}

// ------------------------------------- satellite: decorrelated retry jitter

/// A replica that is simply gone: every round trip fails immediately.
class AlwaysFailTransport final : public Transport {
 public:
  http::Response round_trip(const http::Request&) override {
    throw TransportError("replica down");
  }
};

std::uint64_t failed_call_elapsed_us(const RetryPolicy& retry) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = sim_clock();
  AlwaysFailTransport transport;
  ClientStub stub(transport, WireFormat::kBinary, echo_service(),
                  format_server, clock);
  CallOptions opts;
  opts.retry = retry;
  const std::uint64_t t0 = clock->now_us();
  EXPECT_THROW(stub.call("echo", Value::record({{"n", 1}}), opts),
               TransportError);
  return clock->now_us() - t0;
}

TEST(JitterSeedTest, DefaultSeededStubsBackOffOnDifferentSchedules) {
  RetryPolicy retry;  // jitter_seed 0: derive from the stub's identity
  retry.max_attempts = 6;
  retry.initial_backoff_us = 100'000;
  retry.backoff_multiplier = 1.0;  // isolate the jitter term
  retry.jitter = 0.5;

  // Two stubs on defaults get distinct auto-assigned client ids, so their
  // total backoff (the sum of five jittered delays) must differ — no more
  // fleet-wide retry lockstep after a shared fault.
  const std::uint64_t a = failed_call_elapsed_us(retry);
  const std::uint64_t b = failed_call_elapsed_us(retry);
  EXPECT_NE(a, b);

  // Explicit seeds stay reproducible: same seed → identical schedules.
  retry.jitter_seed = 42;
  EXPECT_EQ(failed_call_elapsed_us(retry), failed_call_elapsed_us(retry));
}

TEST(JitterSeedTest, StableSeedIsDeterministicAndIdentitySensitive) {
  EXPECT_EQ(stable_seed("stub-1"), stable_seed("stub-1"));
  EXPECT_NE(stable_seed("stub-1"), stable_seed("stub-2"));
  EXPECT_NE(stable_seed(""), 0u);  // 0 is reserved as the "derive me" sentinel
}

// --------------------------------- satellite: hardened Retry-After parsing

TEST(RetryAfterTest, MissingMalformedAndZeroHeadersMeanLocalBackoff) {
  http::Headers headers;
  EXPECT_EQ(http::retry_after_us(headers), 0u);  // missing

  headers.set("Retry-After", "Tue, 15 Nov 1994 08:12:31 GMT");  // HTTP-date
  EXPECT_EQ(http::retry_after_us(headers), 0u);

  headers.set("Retry-After", "soon");  // junk
  EXPECT_EQ(http::retry_after_us(headers), 0u);

  headers.set("Retry-After", "0");  // zero: no usable hint
  EXPECT_EQ(http::retry_after_us(headers), 0u);

  headers.set("Retry-After", "2");
  EXPECT_EQ(http::retry_after_us(headers), 2'000'000u);

  headers.set("Retry-After", "7200");  // absurd: clamp, don't overflow
  EXPECT_EQ(http::retry_after_us(headers), http::kMaxRetryAfterUs);

  headers.set("Retry-After", "99999999999999999999");  // u64 overflow: junk
  EXPECT_EQ(http::retry_after_us(headers), 0u);
}

TEST(RetryAfterTest, ShedResponsesRoundTripThroughTheParser) {
  EXPECT_EQ(http::retry_after_us(http::make_shed_response(1).headers),
            1'000'000u);
  EXPECT_EQ(http::retry_after_us(http::make_shed_response(0).headers), 0u);
}

/// A 503-only replica with a configurable (or absent) Retry-After header —
/// the make_shed_response variants the hardening contract is tested against.
class CustomShedTransport final : public Transport {
 public:
  explicit CustomShedTransport(std::optional<std::string> retry_after)
      : retry_after_(std::move(retry_after)) {}
  http::Response round_trip(const http::Request&) override {
    http::Response response = http::make_shed_response(1);
    if (retry_after_) {
      response.headers.set("Retry-After", *retry_after_);
    } else {
      // Rebuild without the header: make_shed_response always sets one.
      http::Response bare;
      bare.status = 503;
      bare.reason = response.reason;
      bare.set_body("server overloaded; retry later");
      return bare;
    }
    return response;
  }

 private:
  std::optional<std::string> retry_after_;
};

std::uint64_t shed_retry_elapsed_us(std::optional<std::string> retry_after) {
  auto format_server = std::make_shared<pbio::FormatServer>();
  auto clock = sim_clock();
  CustomShedTransport transport(std::move(retry_after));
  ClientStub stub(transport, WireFormat::kBinary, echo_service(),
                  format_server, clock);
  CallOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_us = 10'000;
  opts.retry.backoff_multiplier = 2.0;
  opts.retry.jitter = 0.0;  // exact delays for the assertion
  const std::uint64_t t0 = clock->now_us();
  EXPECT_THROW(stub.call("echo", Value::record({{"n", 1}}), opts),
               OverloadError);
  return clock->now_us() - t0;
}

TEST(RetryAfterTest, BadHeadersOn503FallBackToLocalBackoffNotHotRetry) {
  // 10 ms + 20 ms of local backoff — never a 0-delay hot loop.
  const std::uint64_t local = 10'000 + 20'000;
  EXPECT_EQ(shed_retry_elapsed_us(std::nullopt), local);   // missing
  EXPECT_EQ(shed_retry_elapsed_us("tomorrow"), local);     // malformed
  EXPECT_EQ(shed_retry_elapsed_us("0"), local);            // zero-valued
  // A genuine hint still overrides the schedule: two 2 s server-paced waits.
  EXPECT_EQ(shed_retry_elapsed_us("2"), 4'000'000u);
}

// ------------------------- satellite: mid-response death over live servers

/// Two live HTTP replicas (threaded or event front) of one echo runtime;
/// replica A's connections run through a scripted FaultInjector.
struct LiveReplicas {
  std::shared_ptr<pbio::FormatServer> format_server =
      std::make_shared<pbio::FormatServer>();
  std::shared_ptr<net::SteadyTimeSource> clock =
      std::make_shared<net::SteadyTimeSource>();
  ServiceRuntime runtime{format_server, clock};
  std::unique_ptr<http::Server> server_a;
  std::unique_ptr<http::Server> server_b;
  std::shared_ptr<net::FaultInjector> faults_a =
      std::make_shared<net::FaultInjector>(1);
  // FaultyStream borrows its inner stream: replica A's TCP connections are
  // kept alive here across reconnects.
  std::vector<std::unique_ptr<net::TcpStream>> streams_a;

  explicit LiveReplicas(http::FrontMode front) {
    runtime.register_operation("echo", req_format(), resp_format(),
                               echo_handler);
    http::ServerOptions options;
    options.front = front;
    const auto handler = [this](const http::Request& request) {
      return runtime.handle(request);
    };
    server_a = std::make_unique<http::Server>(0, handler, options);
    server_b = std::make_unique<http::Server>(0, handler, options);
  }

  std::vector<EndpointConfig> configs() {
    std::vector<EndpointConfig> out;
    out.push_back({"replica-a", [this] {
                     return std::unique_ptr<Transport>(
                         std::make_unique<HttpTransport>(
                             [this]() -> std::unique_ptr<net::Stream> {
                               streams_a.push_back(net::TcpStream::connect(
                                   "127.0.0.1", server_a->port()));
                               return std::make_unique<net::FaultyStream>(
                                   *streams_a.back(), faults_a);
                             }));
                   }});
    out.push_back({"replica-b", [this] {
                     return std::unique_ptr<Transport>(
                         std::make_unique<HttpTransport>(
                             [this]() -> std::unique_ptr<net::Stream> {
                               return net::TcpStream::connect(
                                   "127.0.0.1", server_b->port());
                             }));
                   }});
    return out;
  }
};

void run_mid_response_death(http::FrontMode front) {
  LiveReplicas env(front);
  ResilienceOptions options;
  options.breaker.consecutive_failure_threshold = 1;
  options.breaker.cooldown_us = 30'000;  // 30 ms wall-clock cool-down
  EndpointSet set(env.configs(), WireFormat::kBinary, echo_service(),
                  env.format_server, env.clock, options);
  ResilientStub stub(set);
  // The flat wire path writes exactly two segments (head + body), which
  // makes the injector's operation indices predictable below.
  set.endpoint(0).stub->set_zero_copy(false);
  set.endpoint(1).stub->set_zero_copy(false);

  CallOptions opts;
  opts.retry.max_attempts = 2;

  // Warm both replicas up, then pin selection to replica A.
  EXPECT_EQ(stub.call("echo", Value::record({{"n", 1}}), opts)
                .field("n")
                .as_i64(),
            1);
  const std::uint64_t ops_after_first = env.faults_a->op_count();
  EXPECT_EQ(stub.call("echo", Value::record({{"n", 2}}), opts)
                .field("n")
                .as_i64(),
            2);
  set.endpoint(1).ewma_latency.update(1e9);  // A is now clearly "fastest"

  // Script the replica death mid-response: the next call's request is ops
  // N and N+1 (two write segments); the reset fires on op N+2, the first
  // *read* of the response — the request was delivered and served, then the
  // connection died under the reply.
  net::FaultSpec reset;
  reset.kind = net::FaultKind::kReset;
  reset.at_op = ops_after_first + 2;
  env.faults_a->schedule(reset);

  const Value result = stub.call("echo", Value::record({{"n", 3}}), opts);
  EXPECT_EQ(result.field("n").as_i64(), 3);
  EXPECT_EQ(env.faults_a->stats().resets, 1u);
  EXPECT_EQ(stub.stats().failovers, 1u);
  EXPECT_EQ(stub.stats().breaker_trips, 1u);
  EXPECT_EQ(stub.last_endpoint(), 1u);
  EXPECT_EQ(set.snapshots()[0].breaker, BreakerState::kOpen);

  // Open breaker: the dead replica sees no user traffic.
  const std::uint64_t calls_on_a = set.snapshots()[0].stats.calls;
  stub.call("echo", Value::record({{"n", 4}}), opts);
  EXPECT_EQ(set.snapshots()[0].stats.calls, calls_on_a);

  // After the cool-down a health probe re-closes the breaker — replica A's
  // server was alive all along; only its connection had died.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stub.pump_probes();
  EXPECT_GE(stub.stats().probes, 1u);
  EXPECT_EQ(stub.stats().breaker_closes, 1u);
  EXPECT_EQ(set.snapshots()[0].breaker, BreakerState::kClosed);

  env.server_a->shutdown();
  env.server_b->shutdown();
}

TEST(LiveFailoverTest, MidResponseDeathFailsOverThreadedFront) {
  run_mid_response_death(http::FrontMode::kThreaded);
}

TEST(LiveFailoverTest, MidResponseDeathFailsOverEventFront) {
  run_mid_response_death(http::FrontMode::kEvent);
}

}  // namespace
}  // namespace sbq::core
