// Unit tests for XDR and Sun RPC (the Figure 4 baseline).
#include <gtest/gtest.h>

#include <thread>

#include "net/pipe.h"
#include "rpc/sunrpc.h"
#include "rpc/xdr.h"

namespace sbq::rpc {
namespace {

TEST(Xdr, ScalarsRoundTrip) {
  XdrEncoder enc;
  enc.put_u32(42);
  enc.put_i32(-7);
  enc.put_u64(1ull << 40);
  enc.put_i64(-(1ll << 40));
  enc.put_f32(1.5F);
  enc.put_f64(-2.25);
  enc.put_bool(true);
  enc.put_bool(false);

  const Bytes wire = enc.take();
  XdrDecoder dec{BytesView{wire}};
  EXPECT_EQ(dec.get_u32(), 42u);
  EXPECT_EQ(dec.get_i32(), -7);
  EXPECT_EQ(dec.get_u64(), 1ull << 40);
  EXPECT_EQ(dec.get_i64(), -(1ll << 40));
  EXPECT_EQ(dec.get_f32(), 1.5F);
  EXPECT_EQ(dec.get_f64(), -2.25);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.exhausted());
}

TEST(Xdr, BigEndianOnTheWire) {
  XdrEncoder enc;
  enc.put_u32(0x01020304);
  const Bytes wire = enc.take();
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(wire[0], 0x01);
  EXPECT_EQ(wire[3], 0x04);
}

TEST(Xdr, StringPaddingToFourBytes) {
  XdrEncoder enc;
  enc.put_string("abcde");  // 4 (len) + 5 + 3 pad = 12
  EXPECT_EQ(enc.size(), 12u);
  XdrDecoder dec{BytesView{enc.buffer().bytes()}};
  EXPECT_EQ(dec.get_string(), "abcde");
  EXPECT_TRUE(dec.exhausted());
}

TEST(Xdr, OpaqueRoundTrip) {
  const Bytes data = {1, 2, 3, 4, 5, 6, 7};
  XdrEncoder enc;
  enc.put_opaque(BytesView{data});
  XdrDecoder dec{BytesView{enc.buffer().bytes()}};
  EXPECT_EQ(dec.get_opaque(), data);
}

TEST(Xdr, EmptyStringAndOpaque) {
  XdrEncoder enc;
  enc.put_string("");
  enc.put_opaque({});
  EXPECT_EQ(enc.size(), 8u);  // two length words, no padding
  XdrDecoder dec{BytesView{enc.buffer().bytes()}};
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.get_opaque().empty());
}

TEST(Xdr, ArrayHeader) {
  XdrEncoder enc;
  enc.put_array_header(3);
  for (int v : {10, 20, 30}) enc.put_i32(v);
  XdrDecoder dec{BytesView{enc.buffer().bytes()}};
  const std::uint32_t n = dec.get_array_header();
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(dec.get_i32(), 10);
  EXPECT_EQ(dec.get_i32(), 20);
  EXPECT_EQ(dec.get_i32(), 30);
}

TEST(Xdr, TruncationThrows) {
  XdrEncoder enc;
  enc.put_u32(5);
  XdrDecoder dec{BytesView{enc.buffer().bytes()}};
  dec.get_u32();
  EXPECT_THROW(dec.get_u32(), CodecError);
}

TEST(RecordMarking, SingleFragmentRoundTrip) {
  auto [a, b] = net::make_pipe();
  const Bytes payload = to_bytes("record payload");
  write_record(*a, BytesView{payload});
  EXPECT_EQ(read_record(*b), payload);
}

TEST(RecordMarking, MultiFragmentAssembly) {
  auto [a, b] = net::make_pipe();
  // Hand-build two fragments: "abc" (more) + "def" (last).
  ByteBuffer buf;
  buf.append_u32(3, ByteOrder::kBig);               // not last
  buf.append(std::string_view{"abc"});
  buf.append_u32(0x80000000u | 3, ByteOrder::kBig);  // last
  buf.append(std::string_view{"def"});
  a->write_all(buf.view());
  EXPECT_EQ(read_record(*b), to_bytes("abcdef"));
}

class SunRpcFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kProg = 0x20000042;
  static constexpr std::uint32_t kVers = 1;

  SunRpcFixture() : server_(kProg, kVers) {
    // Procedure 1: sum of an XDR int array.
    server_.register_procedure(1, [](BytesView args) {
      XdrDecoder dec(args);
      const std::uint32_t n = dec.get_array_header();
      std::int64_t total = 0;
      for (std::uint32_t i = 0; i < n; ++i) total += dec.get_i32();
      XdrEncoder enc;
      enc.put_i64(total);
      return enc.take();
    });
    // Procedure 2: string echo with decoration.
    server_.register_procedure(2, [](BytesView args) {
      XdrDecoder dec(args);
      XdrEncoder enc;
      enc.put_string("echo:" + dec.get_string());
      return enc.take();
    });
    // Procedure 3: always throws.
    server_.register_procedure(3, [](BytesView) -> Bytes {
      throw std::runtime_error("proc failure");
    });
  }

  Bytes call_via_pipe(std::uint32_t proc, BytesView args) {
    auto [client_end, server_end] = net::make_pipe();
    std::thread server_thread(
        [this, s = std::move(server_end)]() mutable { server_.serve(*s); });
    RpcClient client(*client_end, kProg, kVers);
    Bytes result;
    std::exception_ptr error;
    try {
      result = client.call(proc, args);
    } catch (...) {
      error = std::current_exception();
    }
    client_end->close();
    server_thread.join();
    if (error) std::rethrow_exception(error);
    return result;
  }

  RpcServer server_;
};

TEST_F(SunRpcFixture, ArraySumCall) {
  XdrEncoder args;
  args.put_array_header(4);
  for (int v : {1, 2, 3, 4}) args.put_i32(v);
  const Bytes result = call_via_pipe(1, BytesView{args.buffer().bytes()});
  XdrDecoder dec{BytesView{result}};
  EXPECT_EQ(dec.get_i64(), 10);
}

TEST_F(SunRpcFixture, StringEchoCall) {
  XdrEncoder args;
  args.put_string("sunrpc");
  const Bytes result = call_via_pipe(2, BytesView{args.buffer().bytes()});
  XdrDecoder dec{BytesView{result}};
  EXPECT_EQ(dec.get_string(), "echo:sunrpc");
}

TEST_F(SunRpcFixture, UnknownProcedureIsProcUnavail) {
  EXPECT_THROW(call_via_pipe(99, {}), RpcError);
}

TEST_F(SunRpcFixture, HandlerExceptionIsSystemErr) {
  try {
    call_via_pipe(3, {});
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("system error"), std::string::npos);
  }
}

TEST_F(SunRpcFixture, WrongProgramIsProgUnavail) {
  auto [client_end, server_end] = net::make_pipe();
  std::thread server_thread(
      [this, s = std::move(server_end)]() mutable { server_.serve(*s); });
  RpcClient client(*client_end, kProg + 1, kVers);
  EXPECT_THROW(client.call(1, {}), RpcError);
  client_end->close();
  server_thread.join();
}

TEST_F(SunRpcFixture, WrongVersionIsProgMismatch) {
  auto [client_end, server_end] = net::make_pipe();
  std::thread server_thread(
      [this, s = std::move(server_end)]() mutable { server_.serve(*s); });
  RpcClient client(*client_end, kProg, kVers + 5);
  EXPECT_THROW(client.call(1, {}), RpcError);
  client_end->close();
  server_thread.join();
}

TEST_F(SunRpcFixture, SequentialCallsOnOneConnection) {
  auto [client_end, server_end] = net::make_pipe();
  std::thread server_thread(
      [this, s = std::move(server_end)]() mutable { server_.serve(*s); });
  RpcClient client(*client_end, kProg, kVers);
  for (int i = 1; i <= 5; ++i) {
    XdrEncoder args;
    args.put_array_header(1);
    args.put_i32(i);
    const Bytes result = client.call(1, BytesView{args.buffer().bytes()});
    XdrDecoder dec{BytesView{result}};
    EXPECT_EQ(dec.get_i64(), i);
  }
  EXPECT_GT(client.bytes_sent(), 0u);
  client_end->close();
  server_thread.join();
}

}  // namespace
}  // namespace sbq::rpc
