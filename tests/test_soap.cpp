// Unit tests for the SOAP layer: XML parameter codec, envelopes, faults,
// base64 bulk char arrays, and XML-vs-PBIO size characteristics the paper
// reports.
#include <gtest/gtest.h>

#include "common/base64.h"
#include "pbio/value_codec.h"
#include "soap/codec.h"
#include "soap/envelope.h"

namespace sbq::soap {
namespace {

using pbio::FormatBuilder;
using pbio::FormatPtr;
using pbio::TypeKind;
using pbio::Value;

FormatPtr sensor_format() {
  return FormatBuilder("sensor")
      .add_scalar("id", TypeKind::kInt32)
      .add_scalar("reading", TypeKind::kFloat64)
      .add_string("label")
      .add_var_array("samples", TypeKind::kInt32)
      .build();
}

Value sensor_value() {
  return Value::record({{"id", 42},
                        {"reading", 2.5},
                        {"label", "cam<1>"},
                        {"samples", Value::array({7, -8, 9})}});
}

TEST(Codec, WritesTypedElements) {
  const std::string xml = value_to_xml(sensor_value(), *sensor_format(), "sensor");
  EXPECT_EQ(xml,
            "<sensor><id>42</id><reading>2.5</reading><label>cam&lt;1&gt;</label>"
            "<samples><item>7</item><item>-8</item><item>9</item></samples>"
            "</sensor>");
}

TEST(Codec, RoundTrips) {
  const std::string xml = value_to_xml(sensor_value(), *sensor_format(), "sensor");
  const auto dom = xml::parse_document(xml);
  EXPECT_EQ(value_from_xml(*dom, *sensor_format()), sensor_value());
}

TEST(Codec, NestedStructRoundTrip) {
  auto point = FormatBuilder("point")
                   .add_scalar("x", TypeKind::kFloat64)
                   .add_scalar("y", TypeKind::kFloat64)
                   .build();
  auto shape = FormatBuilder("shape")
                   .add_string("name")
                   .add_struct_var_array("points", point)
                   .build();
  const Value v = Value::record(
      {{"name", "tri"},
       {"points", Value::array({Value::record({{"x", 0.0}, {"y", 0.0}}),
                                Value::record({{"x", 1.0}, {"y", 0.5}}),
                                Value::record({{"x", -1.5}, {"y", 2.0}})})}});
  const std::string xml = value_to_xml(v, *shape, "shape");
  const auto dom = xml::parse_document(xml);
  EXPECT_EQ(value_from_xml(*dom, *shape), v);
}

TEST(Codec, MissingElementThrows) {
  const auto dom = xml::parse_document("<sensor><id>1</id></sensor>");
  EXPECT_THROW(value_from_xml(*dom, *sensor_format()), ParseError);
}

TEST(Codec, MissingRecordFieldThrows) {
  const Value incomplete = Value::record({{"id", 1}});
  EXPECT_THROW(value_to_xml(incomplete, *sensor_format(), "sensor"), CodecError);
}

TEST(Codec, CharArraysTravelAsBase64) {
  auto blob_format = FormatBuilder("blob")
                         .add_scalar("n", TypeKind::kInt32)
                         .add_var_array("data", TypeKind::kChar)
                         .build();
  const std::string raw = "binary\x01\x02\xFF bytes";
  const Value v = Value::record({{"n", 1}, {"data", raw}});
  const std::string xml = value_to_xml(v, *blob_format, "blob");
  EXPECT_NE(xml.find(base64_encode(std::string_view{raw})), std::string::npos);
  const auto dom = xml::parse_document(xml);
  const Value back = value_from_xml(*dom, *blob_format);
  EXPECT_EQ(back.field("data").as_string(), raw);
}

TEST(Codec, XmlIsSeveralTimesLargerThanPbioForArrays) {
  // The paper: XML parameters are ~4-5x the corresponding PBIO message for
  // arrays (redundant per-element tags).
  Value big = Value::empty_record();
  Value samples = Value::empty_array();
  for (int i = 0; i < 10000; ++i) samples.push_back(100000 + i);
  big.set_field("id", 1);
  big.set_field("reading", 1.0);
  big.set_field("label", "x");
  big.set_field("samples", std::move(samples));

  const std::string xml = value_to_xml(big, *sensor_format(), "sensor");
  const Bytes bin = pbio::encode_value_message(big, *sensor_format());
  const double ratio = static_cast<double>(xml.size()) / static_cast<double>(bin.size());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(Codec, NestedStructXmlInflationExceedsArrayInflation) {
  // The paper: "the difference is even greater for the nested structure".
  FormatPtr inner = FormatBuilder("leaf")
                        .add_scalar("a", TypeKind::kInt32)
                        .add_scalar("b", TypeKind::kInt32)
                        .build();
  Value leaf = Value::record({{"a", 1}, {"b", 2}});
  FormatPtr fmt = inner;
  Value v = leaf;
  for (int depth = 0; depth < 8; ++depth) {
    fmt = FormatBuilder("level" + std::to_string(depth))
              .add_scalar("tag", TypeKind::kInt32)
              .add_struct("child0", fmt)
              .add_struct("child1", fmt)
              .build();
    v = Value::record({{"tag", depth}, {"child0", v}, {"child1", v}});
  }
  const std::string xml = value_to_xml(v, *fmt, "root");
  const Bytes bin = pbio::encode_value_message(v, *fmt);
  const double struct_ratio =
      static_cast<double>(xml.size()) / static_cast<double>(bin.size());

  // Array of the same binary size, for comparison.
  Value arr_holder = Value::record({{"id", 1},
                                    {"reading", 1.0},
                                    {"label", "x"},
                                    {"samples", Value::empty_array()}});
  {
    Value samples = Value::empty_array();
    const std::size_t count = bin.size() / 4;
    for (std::size_t i = 0; i < count; ++i) {
      samples.push_back(static_cast<std::int64_t>(100000 + i));
    }
    arr_holder.set_field("samples", std::move(samples));
  }
  const std::string arr_xml = value_to_xml(arr_holder, *sensor_format(), "sensor");
  const Bytes arr_bin = pbio::encode_value_message(arr_holder, *sensor_format());
  const double array_ratio =
      static_cast<double>(arr_xml.size()) / static_cast<double>(arr_bin.size());

  EXPECT_GT(struct_ratio, 4.5);          // paper reports up to ~9x
  EXPECT_GT(struct_ratio, array_ratio);  // "even greater for the nested structure"
}

TEST(Envelope, RequestStructure) {
  const std::string xml = build_request("getSensor", sensor_value(), *sensor_format());
  const ParsedEnvelope env = parse_envelope(xml);
  EXPECT_EQ(env.operation(), "getSensor");
  EXPECT_FALSE(env.is_fault());
  EXPECT_EQ(decode_body(env, *sensor_format()), sensor_value());
}

TEST(Envelope, ResponseStructure) {
  const std::string xml = build_response("getSensor", sensor_value(), *sensor_format());
  const ParsedEnvelope env = parse_envelope(xml);
  EXPECT_EQ(env.operation(), "getSensorResponse");
}

TEST(Envelope, FaultRoundTrip) {
  const std::string xml = build_fault("soap:Server", "database on fire");
  const ParsedEnvelope env = parse_envelope(xml);
  ASSERT_TRUE(env.is_fault());
  const Fault fault = parse_fault(env);
  EXPECT_EQ(fault.code, "soap:Server");
  EXPECT_EQ(fault.message, "database on fire");
}

TEST(Envelope, ParseFaultOnNonFaultThrows) {
  const std::string xml = build_request("op", sensor_value(), *sensor_format());
  EXPECT_THROW(parse_fault(parse_envelope(xml)), ParseError);
}

TEST(Envelope, RejectsNonEnvelope) {
  EXPECT_THROW(parse_envelope("<NotAnEnvelope/>"), ParseError);
}

TEST(Envelope, RejectsEmptyBody) {
  EXPECT_THROW(parse_envelope("<soap:Envelope xmlns:soap=\"u\">"
                              "<soap:Body></soap:Body></soap:Envelope>"),
               ParseError);
}

TEST(Envelope, RejectsMultiElementBody) {
  EXPECT_THROW(parse_envelope("<soap:Envelope xmlns:soap=\"u\"><soap:Body>"
                              "<a/><b/></soap:Body></soap:Envelope>"),
               ParseError);
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode(std::string_view{""}), "");
  EXPECT_EQ(base64_encode(std::string_view{"f"}), "Zg==");
  EXPECT_EQ(base64_encode(std::string_view{"fo"}), "Zm8=");
  EXPECT_EQ(base64_encode(std::string_view{"foo"}), "Zm9v");
  EXPECT_EQ(base64_encode(std::string_view{"foobar"}), "Zm9vYmFy");
  EXPECT_EQ(base64_decode_string("Zm9vYmFy"), "foobar");
  EXPECT_EQ(base64_decode_string("Zm9v\nYmFy"), "foobar");  // whitespace ok
}

TEST(Base64, AllByteValuesRoundTrip) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(base64_decode(base64_encode(BytesView{all})), all);
}

TEST(Base64, MalformedThrows) {
  EXPECT_THROW(base64_decode("a!b"), ParseError);
  EXPECT_THROW(base64_decode("Zg==Zg"), ParseError);  // data after padding
}

}  // namespace
}  // namespace sbq::soap
