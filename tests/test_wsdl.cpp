// Unit tests for the WSDL compiler front end (parse → formats) and back end
// (stub generation), plus WSDL generation round-trips.
#include <gtest/gtest.h>

#include "wsdl/stubgen.h"
#include "wsdl/wsdl.h"

namespace sbq::wsdl {
namespace {

constexpr const char* kImageWsdl = R"(<?xml version="1.0"?>
<definitions name="ImageService" targetNamespace="urn:image"
             xmlns:tns="urn:image" xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <types>
    <xsd:schema>
      <xsd:complexType name="image_request">
        <xsd:sequence>
          <xsd:element name="filename" type="xsd:string"/>
          <xsd:element name="transform" type="xsd:string"/>
        </xsd:sequence>
      </xsd:complexType>
      <xsd:complexType name="image">
        <xsd:sequence>
          <xsd:element name="width" type="xsd:int"/>
          <xsd:element name="height" type="xsd:int"/>
          <xsd:element name="pixels" type="xsd:byte" minOccurs="0" maxOccurs="unbounded"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>
  </types>
  <message name="getImageInput"><part name="params" type="tns:image_request"/></message>
  <message name="getImageOutput"><part name="result" type="tns:image"/></message>
  <portType name="ImagePort">
    <operation name="getImage">
      <input message="tns:getImageInput"/>
      <output message="tns:getImageOutput"/>
    </operation>
  </portType>
  <service name="ImageService">
    <port name="ImagePort" binding="tns:ImageBinding">
      <address location="http://localhost:8080/image"/>
    </port>
  </service>
</definitions>)";

TEST(WsdlParse, CompilesServiceAndTypes) {
  const ServiceDesc svc = parse_wsdl(kImageWsdl);
  EXPECT_EQ(svc.name, "ImageService");
  EXPECT_EQ(svc.target_namespace, "urn:image");
  EXPECT_EQ(svc.location, "http://localhost:8080/image");
  ASSERT_EQ(svc.operations.size(), 1u);
  EXPECT_EQ(svc.operations[0].name, "getImage");
  EXPECT_EQ(svc.operations[0].input->canonical(),
            "image_request{filename:string,transform:string}");
  EXPECT_EQ(svc.operations[0].output->canonical(),
            "image{width:i32,height:i32,pixels:char[]}");
}

TEST(WsdlParse, TypeLookupHelpers) {
  const ServiceDesc svc = parse_wsdl(kImageWsdl);
  EXPECT_NE(svc.type("image"), nullptr);
  EXPECT_EQ(svc.type("nope"), nullptr);
  EXPECT_NE(svc.operation("getImage"), nullptr);
  EXPECT_EQ(svc.operation("nope"), nullptr);
  EXPECT_THROW((void)svc.required_operation("nope"), ParseError);
}

TEST(WsdlParse, NestedComplexTypes) {
  const ServiceDesc svc = parse_wsdl(R"(<definitions name="S">
    <types><schema>
      <complexType name="point"><sequence>
        <element name="x" type="double"/><element name="y" type="double"/>
      </sequence></complexType>
      <complexType name="path"><sequence>
        <element name="id" type="int"/>
        <element name="points" type="point" maxOccurs="unbounded"/>
      </sequence></complexType>
    </schema></types>
    <message name="in"><part name="p" type="path"/></message>
    <message name="out"><part name="p" type="point"/></message>
    <portType name="P"><operation name="head">
      <input message="in"/><output message="out"/>
    </operation></portType>
  </definitions>)");
  EXPECT_EQ(svc.required_operation("head").input->canonical(),
            "path{id:i32,points:point{x:f64,y:f64}[]}");
}

TEST(WsdlParse, FixedOccursBecomesFixedArray) {
  const ServiceDesc svc = parse_wsdl(R"(<definitions name="S">
    <types><schema>
      <complexType name="m"><sequence>
        <element name="vals" type="float" maxOccurs="4"/>
      </sequence></complexType>
    </schema></types>
    <message name="io"><part name="p" type="m"/></message>
    <portType name="P"><operation name="op">
      <input message="io"/><output message="io"/>
    </operation></portType>
  </definitions>)");
  EXPECT_EQ(svc.required_operation("op").input->canonical(), "m{vals:f32[4]}");
}

TEST(WsdlParse, XsdScalarMapping) {
  using pbio::TypeKind;
  EXPECT_EQ(xsd_scalar_kind("xsd:int"), TypeKind::kInt32);
  EXPECT_EQ(xsd_scalar_kind("long"), TypeKind::kInt64);
  EXPECT_EQ(xsd_scalar_kind("unsignedInt"), TypeKind::kUInt32);
  EXPECT_EQ(xsd_scalar_kind("unsignedLong"), TypeKind::kUInt64);
  EXPECT_EQ(xsd_scalar_kind("float"), TypeKind::kFloat32);
  EXPECT_EQ(xsd_scalar_kind("xsd:double"), TypeKind::kFloat64);
  EXPECT_EQ(xsd_scalar_kind("byte"), TypeKind::kChar);
  EXPECT_EQ(xsd_scalar_kind("string"), TypeKind::kString);
  EXPECT_THROW(xsd_scalar_kind("dateTime"), ParseError);
}

TEST(WsdlParse, ErrorsAreDiagnosed) {
  EXPECT_THROW(parse_wsdl("<notwsdl/>"), ParseError);
  // Unknown referenced type.
  EXPECT_THROW(parse_wsdl(R"(<definitions name="S">
    <message name="io"><part name="p" type="ghost"/></message>
    <portType name="P"><operation name="op">
      <input message="io"/><output message="io"/>
    </operation></portType></definitions>)"),
               ParseError);
  // No operations.
  EXPECT_THROW(parse_wsdl(R"(<definitions name="S"></definitions>)"), ParseError);
  // Forward reference.
  EXPECT_THROW(parse_wsdl(R"(<definitions name="S">
    <types><schema>
      <complexType name="a"><sequence>
        <element name="b" type="later"/>
      </sequence></complexType>
      <complexType name="later"><sequence>
        <element name="x" type="int"/>
      </sequence></complexType>
    </schema></types>
    <message name="io"><part name="p" type="a"/></message>
    <portType name="P"><operation name="op">
      <input message="io"/><output message="io"/>
    </operation></portType></definitions>)"),
               ParseError);
}

TEST(WsdlGenerate, RoundTripsThroughParse) {
  const ServiceDesc original = parse_wsdl(kImageWsdl);
  const std::string regenerated = generate_wsdl(original);
  const ServiceDesc back = parse_wsdl(regenerated);
  EXPECT_EQ(back.name, original.name);
  ASSERT_EQ(back.operations.size(), original.operations.size());
  EXPECT_EQ(back.operations[0].input->canonical(),
            original.operations[0].input->canonical());
  EXPECT_EQ(back.operations[0].output->canonical(),
            original.operations[0].output->canonical());
  EXPECT_EQ(back.operations[0].input->format_id(),
            original.operations[0].input->format_id());
}

TEST(Stubgen, SanitizesIdentifiers) {
  EXPECT_EQ(sanitize_identifier("plain_name"), "plain_name");
  EXPECT_EQ(sanitize_identifier("with-dash.dot"), "with_dash_dot");
  EXPECT_EQ(sanitize_identifier("1starts_with_digit"), "f_1starts_with_digit");
}

TEST(Stubgen, EmitsExpectedArtifacts) {
  const ServiceDesc svc = parse_wsdl(kImageWsdl);
  const StubFiles stubs = generate_stubs(svc);

  // Header: structs, format accessors, client stub, skeleton.
  EXPECT_NE(stubs.header.find("struct image_request {"), std::string::npos);
  EXPECT_NE(stubs.header.find("struct image {"), std::string::npos);
  EXPECT_NE(stubs.header.find("sbq::pbio::VarArray<char> pixels;"), std::string::npos);
  EXPECT_NE(stubs.header.find("class ImageServiceClient {"), std::string::npos);
  EXPECT_NE(stubs.header.find("class ImageServiceSkeleton {"), std::string::npos);
  EXPECT_NE(stubs.header.find("virtual sbq::pbio::Value getImage"), std::string::npos);

  // Support file: format builders with the right calls.
  EXPECT_NE(stubs.support.find("FormatBuilder b(\"image\")"), std::string::npos);
  EXPECT_NE(stubs.support.find("add_var_array(\"pixels\""), std::string::npos);
  EXPECT_NE(stubs.support.find("add_string(\"filename\")"), std::string::npos);
}

TEST(Stubgen, DeterministicOutput) {
  const ServiceDesc svc = parse_wsdl(kImageWsdl);
  const StubFiles a = generate_stubs(svc);
  const StubFiles b = generate_stubs(svc);
  EXPECT_EQ(a.header, b.header);
  EXPECT_EQ(a.support, b.support);
}

}  // namespace
}  // namespace sbq::wsdl
