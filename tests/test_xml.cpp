// Unit tests for the XML substrate: escaping, SAX parser, DOM, writer.
#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/sax.h"
#include "xml/writer.h"

namespace sbq::xml {
namespace {

// ---------------------------------------------------------------- escaping

TEST(Escape, EscapesSpecials) {
  EXPECT_EQ(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Escape, UnescapeNamedEntities) {
  EXPECT_EQ(unescape("a&lt;b&gt;&amp;&quot;&apos;"), "a<b>&\"'");
}

TEST(Escape, UnescapeNumericReferences) {
  EXPECT_EQ(unescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(unescape("&#xE9;"), "\xC3\xA9");       // é as UTF-8
  EXPECT_EQ(unescape("&#x1F600;").size(), 4u);     // 4-byte UTF-8
}

TEST(Escape, RoundTrip) {
  const std::string nasty = "<tag attr=\"v&v\">'quoted' & more</tag>";
  EXPECT_EQ(unescape(escape(nasty)), nasty);
}

TEST(Escape, MalformedEntitiesThrow) {
  EXPECT_THROW(unescape("&unknown;"), ParseError);
  EXPECT_THROW(unescape("&amp"), ParseError);
  EXPECT_THROW(unescape("&#;"), ParseError);
  EXPECT_THROW(unescape("&#xZZ;"), ParseError);
  EXPECT_THROW(unescape("&#x110000;"), ParseError);
}

// ---------------------------------------------------------------- SAX

struct Trace {
  std::string events;
};

SaxHandlers tracing_handlers(Trace& trace) {
  SaxHandlers h;
  h.start_element = [&](std::string_view name, const std::vector<Attribute>& attrs) {
    trace.events += "<" + std::string(name);
    for (const auto& a : attrs) trace.events += " " + a.name + "=" + a.value;
    trace.events += ">";
  };
  h.end_element = [&](std::string_view name) {
    trace.events += "</" + std::string(name) + ">";
  };
  h.characters = [&](std::string_view text) {
    trace.events += "[" + std::string(text) + "]";
  };
  h.comment = [&](std::string_view text) {
    trace.events += "{c:" + std::string(text) + "}";
  };
  h.processing_instruction = [&](std::string_view target, std::string_view data) {
    trace.events += "{pi:" + std::string(target) + ":" + std::string(data) + "}";
  };
  return h;
}

TEST(Sax, SimpleDocument) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<root><a>1</a><b x=\"2\"/></root>");
  EXPECT_EQ(t.events, "<root><a>[1]</a><b x=2></b></root>");
}

TEST(Sax, DeclarationAndWhitespaceProlog) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n  <r/>\n");
  EXPECT_EQ(t.events, "<r></r>");
}

TEST(Sax, EntitiesInTextAndAttributes) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<r a=\"x&amp;y\">1 &lt; 2</r>");
  EXPECT_EQ(t.events, "<r a=x&y>[1 < 2]</r>");
}

TEST(Sax, CdataDeliveredVerbatim) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<r><![CDATA[<not & parsed>]]></r>");
  EXPECT_EQ(t.events, "<r>[<not & parsed>]</r>");
}

TEST(Sax, CommentsAndPis) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<!-- head --><r><!-- in --><?proc data?></r><!-- tail -->");
  EXPECT_EQ(t.events, "{c: head }<r>{c: in }{pi:proc:data}</r>{c: tail }");
}

TEST(Sax, NestedElements) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<a><b><c/></b><b2/></a>");
  EXPECT_EQ(t.events, "<a><b><c></c></b><b2></b2></a>");
}

TEST(Sax, NamespacedNamesPassThrough) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<soap:Envelope xmlns:soap=\"uri\"><soap:Body/></soap:Envelope>");
  EXPECT_EQ(t.events,
            "<soap:Envelope xmlns:soap=uri><soap:Body></soap:Body></soap:Envelope>");
}

TEST(Sax, MismatchedTagThrowsWithPosition) {
  SaxParser p({});
  try {
    p.parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected XmlError";
  } catch (const XmlError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(Sax, WellFormednessViolations) {
  SaxParser p({});
  EXPECT_THROW(p.parse(""), XmlError);
  EXPECT_THROW(p.parse("just text"), XmlError);
  EXPECT_THROW(p.parse("<a>"), XmlError);
  EXPECT_THROW(p.parse("<a></a><b></b>"), XmlError);
  EXPECT_THROW(p.parse("<a></a>trailing"), XmlError);
  EXPECT_THROW(p.parse("<a x=1></a>"), XmlError);         // unquoted attr
  EXPECT_THROW(p.parse("<a x=\"1\" x=\"2\"/>"), XmlError);  // duplicate attr
  EXPECT_THROW(p.parse("<a><b attr=\"<\"/></a>"), XmlError);
  EXPECT_THROW(p.parse("<!DOCTYPE foo []><a/>"), XmlError);
  EXPECT_THROW(p.parse("<a><!-- -- --></a>"), XmlError);
}

TEST(Sax, DeepNestingWithinLimitParses) {
  std::string doc;
  for (int i = 0; i < 200; ++i) doc += "<n>";
  doc += "x";
  for (int i = 0; i < 200; ++i) doc += "</n>";
  int depth = 0;
  int max_depth = 0;
  SaxHandlers h;
  h.start_element = [&](std::string_view, const std::vector<Attribute>&) {
    max_depth = std::max(max_depth, ++depth);
  };
  h.end_element = [&](std::string_view) { --depth; };
  SaxParser p(std::move(h));
  p.parse(doc);
  EXPECT_EQ(max_depth, 200);
}

TEST(Sax, NestingBeyondLimitIsRejected) {
  std::string doc;
  for (int i = 0; i < 500; ++i) doc += "<n>";
  doc += "x";
  for (int i = 0; i < 500; ++i) doc += "</n>";
  SaxParser p({});
  EXPECT_THROW(p.parse(doc), XmlError);

  SaxParser strict({}, /*max_depth=*/4);
  EXPECT_THROW(strict.parse("<a><b><c><d><e/></d></c></b></a>"), XmlError);
  SaxParser ok({}, /*max_depth=*/5);
  ok.parse("<a><b><c><d><e/></d></c></b></a>");
}

TEST(Sax, AttributeWhitespaceTolerance) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<r a = \"1\"  b=\"2\" />");
  EXPECT_EQ(t.events, "<r a=1 b=2></r>");
}

TEST(Sax, SingleQuotedAttributes) {
  Trace t;
  SaxParser p(tracing_handlers(t));
  p.parse("<r a='va\"lue'/>");
  EXPECT_EQ(t.events, "<r a=va\"lue></r>");
}

// ---------------------------------------------------------------- DOM

TEST(Dom, BuildsTree) {
  auto root = parse_document(
      "<definitions name=\"svc\"><types><schema/></types>"
      "<message name=\"m1\"/><message name=\"m2\"/></definitions>");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "definitions");
  EXPECT_EQ(root->required_attribute("name"), "svc");
  EXPECT_NE(root->child("types"), nullptr);
  EXPECT_EQ(root->children_named("message").size(), 2u);
  EXPECT_EQ(root->children_named("message")[1]->required_attribute("name"), "m2");
}

TEST(Dom, TextAccumulation) {
  auto root = parse_document("<v>12<!-- split -->34</v>");
  EXPECT_EQ(root->trimmed_text(), "1234");
}

TEST(Dom, LocalNameStripsPrefix) {
  auto root = parse_document("<xsd:schema xmlns:xsd=\"u\"><xsd:element/></xsd:schema>");
  EXPECT_EQ(root->local_name(), "schema");
  EXPECT_NE(root->child("element"), nullptr);
}

TEST(Dom, AttributeLookupIgnoresPrefix) {
  auto root = parse_document("<e xsi:type=\"int\" xmlns:xsi=\"u\"/>");
  ASSERT_TRUE(root->attribute("type").has_value());
  EXPECT_EQ(*root->attribute("type"), "int");
}

TEST(Dom, RequiredLookupsThrow) {
  auto root = parse_document("<e/>");
  EXPECT_THROW((void)root->required_attribute("missing"), ParseError);
  EXPECT_THROW((void)root->required_child("missing"), ParseError);
}

TEST(Dom, RoundTripThroughToString) {
  auto root = parse_document("<a x=\"1\"><b>t&amp;t</b></a>");
  auto again = parse_document(root->to_string());
  EXPECT_EQ(again->name, "a");
  EXPECT_EQ(again->required_child("b").trimmed_text(), "t&t");
}

// ---------------------------------------------------------------- writer

TEST(Writer, CompactDocument) {
  XmlWriter w;
  w.start_element("root");
  w.attribute("id", std::int64_t{7});
  w.start_element("item");
  w.text("a<b");
  w.end_element();
  w.start_element("empty");
  w.end_element();
  w.end_element();
  EXPECT_EQ(w.take(), "<root id=\"7\"><item>a&lt;b</item><empty/></root>");
}

TEST(Writer, DeclarationFirst) {
  XmlWriter w;
  w.declaration();
  w.start_element("r");
  w.end_element();
  EXPECT_EQ(w.take(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

TEST(Writer, DeclarationNotFirstThrows) {
  XmlWriter w;
  w.start_element("r");
  EXPECT_THROW(w.declaration(), ParseError);
}

TEST(Writer, UnbalancedTakeThrows) {
  XmlWriter w;
  w.start_element("r");
  EXPECT_THROW(w.take(), ParseError);
}

TEST(Writer, AttributeAfterContentThrows) {
  XmlWriter w;
  w.start_element("r");
  w.text("x");
  EXPECT_THROW(w.attribute("late", "1"), ParseError);
}

TEST(Writer, TextElementHelpers) {
  XmlWriter w;
  w.start_element("r");
  w.text_element("i", std::int64_t{-3});
  w.text_element("d", 0.5);
  w.text_element("s", "x&y");
  w.end_element();
  EXPECT_EQ(w.take(), "<r><i>-3</i><d>0.5</d><s>x&amp;y</s></r>");
}

TEST(Writer, OutputParsesBack) {
  XmlWriter w(true);
  w.declaration();
  w.start_element("envelope");
  w.start_element("body");
  w.attribute("kind", "test");
  w.text_element("value", std::int64_t{42});
  w.end_element();
  w.end_element();
  auto root = parse_document(w.take());
  EXPECT_EQ(root->required_child("body").required_child("value").trimmed_text(), "42");
}

TEST(Writer, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 3.14159265358979, 1e-9, 6.02e23}) {
    EXPECT_DOUBLE_EQ(std::stod(format_double(v)), v);
  }
}

}  // namespace
}  // namespace sbq::xml
