#include "sbqlint/cache.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace sbq::lint {

namespace {

/// Format version: bump whenever the Scan layout or the tokenizer's
/// behavior changes, so stale entries read as misses instead of feeding
/// the rules wrong tokens.
constexpr const char* kHeader = "sbqlint-scan 1";

char kind_char(Token::Kind kind) {
  switch (kind) {
    case Token::Kind::kIdent: return 'i';
    case Token::Kind::kNumber: return 'n';
    case Token::Kind::kPunct: return 'p';
    case Token::Kind::kLiteral: return 'l';
  }
  return '?';
}

bool kind_of(char c, Token::Kind& out) {
  switch (c) {
    case 'i': out = Token::Kind::kIdent; return true;
    case 'n': out = Token::Kind::kNumber; return true;
    case 'p': out = Token::Kind::kPunct; return true;
    case 'l': out = Token::Kind::kLiteral; return true;
  }
  return false;
}

/// Tab-separated records need tab-free fields; a field that could carry
/// one (pathological edge-pragma text) just makes the file uncacheable.
bool serializable(const std::string& s) {
  return s.find_first_of("\t\n\r") == std::string::npos;
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  long value = 0;
  std::size_t i = 0;
  const bool negative = s[0] == '-';
  if (negative) i = 1;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    value = value * 10 + (s[i] - '0');
    if (value > 1000000000) return false;
  }
  out = static_cast<int>(negative ? -value : value);
  return true;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

void write_scan(std::ostream& out, const Scan& scan) {
  out << kHeader << "\n";
  for (const Token& tok : scan.tokens) {
    out << "t\t" << kind_char(tok.kind) << "\t" << tok.line << "\t"
        << tok.text << "\n";
  }
  for (const IncludeDirective& inc : scan.includes) {
    out << "i\t" << inc.line << "\t" << (inc.angled ? 1 : 0) << "\t"
        << inc.path << "\n";
  }
  for (const AllowPragma& pragma : scan.pragmas) {
    out << "p\t" << pragma.line << "\t";
    for (std::size_t i = 0; i < pragma.rules.size(); ++i) {
      out << (i ? "," : "") << pragma.rules[i];
    }
    out << "\n";
  }
  for (const EdgePragma& edge : scan.edges) {
    out << "e\t" << edge.line << "\t" << (edge.malformed ? 1 : 0) << "\t"
        << edge.caller << "\t" << edge.callee << "\n";
  }
  for (const FieldAnnotation& ann : scan.annotations) {
    out << "a\t"
        << (ann.kind == FieldAnnotation::Kind::kGuardedBy ? 'g' : 'f')
        << "\t" << ann.line << "\t" << (ann.malformed ? 1 : 0) << "\t"
        << ann.arg << "\n";
  }
}

/// A Scan is cacheable when every variable-width field is tab-free.
bool cacheable(const Scan& scan) {
  for (const EdgePragma& edge : scan.edges) {
    if (!serializable(edge.caller) || !serializable(edge.callee)) return false;
  }
  for (const FieldAnnotation& ann : scan.annotations) {
    if (!serializable(ann.arg)) return false;
  }
  for (const IncludeDirective& inc : scan.includes) {
    if (!serializable(inc.path)) return false;
  }
  return true;
}

/// Parses one serialized Scan; false on any malformed record (the
/// caller treats the whole entry as a miss).
bool read_scan(std::istream& in, Scan& scan) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = split_tabs(line);
    if (f[0] == "t") {
      Token::Kind kind;
      int at = 0;
      if (f.size() != 4 || f[1].size() != 1 || !kind_of(f[1][0], kind) ||
          !parse_int(f[2], at)) {
        return false;
      }
      scan.tokens.push_back(Token{kind, f[3], at});
    } else if (f[0] == "i") {
      int at = 0;
      if (f.size() != 4 || !parse_int(f[1], at) ||
          (f[2] != "0" && f[2] != "1")) {
        return false;
      }
      scan.includes.push_back(IncludeDirective{f[3], f[2] == "1", at});
    } else if (f[0] == "p") {
      int at = 0;
      if (f.size() != 3 || !parse_int(f[1], at)) return false;
      AllowPragma pragma{at, {}};
      std::stringstream list(f[2]);
      std::string rule;
      while (std::getline(list, rule, ',')) {
        if (rule.empty()) continue;
        pragma.rules.push_back(rule);
        scan.allowances[at].insert(rule);
        scan.allowances[at + 1].insert(rule);
      }
      scan.pragmas.push_back(std::move(pragma));
    } else if (f[0] == "e") {
      int at = 0;
      if (f.size() != 5 || !parse_int(f[1], at) ||
          (f[2] != "0" && f[2] != "1")) {
        return false;
      }
      scan.edges.push_back(EdgePragma{at, f[3], f[4], f[2] == "1"});
    } else if (f[0] == "a") {
      int at = 0;
      if (f.size() != 5 || (f[1] != "g" && f[1] != "f") ||
          !parse_int(f[2], at) || (f[3] != "0" && f[3] != "1")) {
        return false;
      }
      scan.annotations.push_back(FieldAnnotation{
          f[1] == "g" ? FieldAnnotation::Kind::kGuardedBy
                      : FieldAnnotation::Kind::kAffine,
          at, f[4], f[3] == "1"});
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string content_hash(const std::string& content) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : content) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

ScanCache::ScanCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failure leaves the cache inert: loads miss, stores no-op.
}

std::string ScanCache::entry_path(const std::string& content) const {
  return dir_ + "/" + content_hash(content) + ".scan";
}

bool ScanCache::load(const std::string& content, Scan& out) {
  std::ifstream in(entry_path(content), std::ios::binary);
  Scan scan;
  if (!in || !read_scan(in, scan)) {
    ++misses_;
    return false;
  }
  out = std::move(scan);
  ++hits_;
  return true;
}

void ScanCache::store(const std::string& content, const Scan& scan) {
  if (!cacheable(scan)) return;
  const std::string path = entry_path(content);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    write_scan(out, scan);
    if (!out) return;
  }
  // Rename over the final name so concurrent readers never see a torn
  // entry; on failure drop the temp file and move on.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace sbq::lint
