// sbqlint scan cache — memoizes tokenizer output across runs.
//
// Pass 1 re-tokenizes every file on every invocation, and the rule set
// keeps growing; in CI the sweep runs several times (gate, summary,
// SARIF). The cache keys each file's Scan by an FNV-1a hash of its
// CONTENT — not its path or mtime — so a cached entry is valid exactly
// as long as the bytes are identical, entries survive renames, and two
// identical files share one entry. Entries live under
// `<root>/build/sbqlint-cache/` as versioned text records; anything that
// fails to parse (truncated write, format bump) is treated as a miss and
// rewritten. The cache never throws and never fails a run: every I/O
// path degrades to re-tokenizing.
#pragma once

#include <string>

#include "sbqlint/tokenizer.h"

namespace sbq::lint {

/// 64-bit FNV-1a of the file content, as 16 hex digits.
std::string content_hash(const std::string& content);

class ScanCache {
 public:
  /// Creates `dir` (best effort); a directory that cannot be created
  /// simply makes every load a miss and every store a no-op.
  explicit ScanCache(std::string dir);

  /// Loads the Scan cached for this content, if any. Returns false (a
  /// miss) when the entry is absent or unreadable.
  bool load(const std::string& content, Scan& out);

  /// Writes the Scan for this content. Best effort: failures are silent
  /// (the next run re-tokenizes).
  void store(const std::string& content, const Scan& scan);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::string entry_path(const std::string& content) const;

  std::string dir_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace sbq::lint
