#include "sbqlint/callgraph.h"

#include <algorithm>
#include <set>

namespace sbq::lint {

namespace {

const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kWords = {
      "if",      "while",   "for",      "switch",        "return",
      "sizeof",  "alignof", "decltype", "catch",         "new",
      "delete",  "throw",   "case",     "do",            "else",
      "goto",    "co_await", "co_return", "co_yield",    "static_assert",
      "alignas", "noexcept", "typeid",  "requires",      "const_cast",
      "static_cast", "dynamic_cast", "reinterpret_cast", "operator",
  };
  return kWords;
}

bool is_guard_type(const std::string& text) {
  return text == "lock_guard" || text == "unique_lock" ||
         text == "scoped_lock" || text == "shared_lock";
}

/// Skips a balanced `<...>` starting at `i` (which must be '<'). Returns
/// the index just past the matching '>', or `i` itself when the angles
/// do not balance within a sane window (then '<' was a comparison).
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size() && j < i + 256; ++j) {
    const std::string& s = t[j].text;
    if (s == "<") ++depth;
    else if (s == ">") {
      if (--depth == 0) return j + 1;
    } else if (s == ";" || s == "{" || s == "}") {
      break;  // statement boundary: not a template argument list
    }
  }
  return i;
}

/// Skips a balanced `(...)`/`{...}` starting at `i` (an opener). Returns
/// the index just past the matching closer, or t.size() on imbalance.
std::size_t skip_group(const std::vector<Token>& t, std::size_t i) {
  const std::string open = t[i].text;
  const std::string close = open == "(" ? ")" : (open == "{" ? "}" : "]");
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    else if (t[j].text == close && --depth == 0) return j + 1;
  }
  return t.size();
}

struct ActiveLock {
  std::string name;
  std::string key;
  std::string guard_var;  // "" for a manual mutex.lock()
  int decl_depth = 0;     // brace depth of the guard declaration
  bool manual = false;    // manual locks survive block exits until .unlock()
};

class FileParser {
 public:
  FileParser(const std::string& path, const Scan& scan)
      : path_(path), t_(scan.tokens), anns_(scan.annotations),
        ann_bound_(scan.annotations.size(), false) {
    // Like allow pragmas, an annotation covers its own line and the next.
    for (std::size_t a = 0; a < anns_.size(); ++a) {
      if (anns_[a].malformed) continue;
      ann_at_[anns_[a].line].push_back(a);
      ann_at_[anns_[a].line + 1].push_back(a);
    }
  }

  FileGraph run() {
    while (i_ < t_.size()) {
      top_level_step();
    }
    for (std::size_t a = 0; a < ann_bound_.size(); ++a) {
      if (ann_bound_[a]) out_.bound_annotations.push_back(a);
    }
    return std::move(out_);
  }

 private:
  struct ScopeEnt {
    std::vector<std::string> name;  // empty for brace balancers
    bool is_class = false;
  };

  bool ident_at(std::size_t i, const char* text) const {
    return i < t_.size() && t_[i].kind == Token::Kind::kIdent &&
           t_[i].text == text;
  }
  bool punct_at(std::size_t i, const char* text) const {
    return i < t_.size() && t_[i].kind == Token::Kind::kPunct &&
           t_[i].text == text;
  }

  void skip_to_semicolon() {
    while (i_ < t_.size() && t_[i_].text != ";" && t_[i_].text != "{") ++i_;
    if (i_ < t_.size() && t_[i_].text == ";") ++i_;
  }

  void top_level_step() {
    const Token& tok = t_[i_];
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i_;
        return;
      }
      if (tok.text == "{") {
        scopes_.push_back(ScopeEnt{});  // balancer (init lists, enum bodies)
        ++i_;
        return;
      }
      ++i_;
      return;
    }
    if (tok.kind != Token::Kind::kIdent) {
      ++i_;
      return;
    }
    maybe_bind_field(tok.line);
    const std::string& word = tok.text;
    if (word == "namespace") {
      handle_namespace();
      return;
    }
    if ((word == "class" || word == "struct" || word == "union") &&
        !(i_ > 0 && ident_at(i_ - 1, "enum"))) {
      handle_class();
      return;
    }
    if (word == "template") {
      ++i_;
      if (punct_at(i_, "<")) i_ = skip_angles(t_, i_);
      return;
    }
    if (word == "using" || word == "typedef" || word == "friend") {
      skip_to_semicolon();
      return;
    }
    try_function_def();
  }

  void handle_namespace() {
    std::size_t j = i_ + 1;
    std::vector<std::string> name;
    while (j < t_.size() && t_[j].kind == Token::Kind::kIdent) {
      name.push_back(t_[j].text);
      ++j;
      if (punct_at(j, "::")) ++j;
      else break;
    }
    if (punct_at(j, "{")) {
      scopes_.push_back(ScopeEnt{std::move(name)});
      i_ = j + 1;
      return;
    }
    // namespace alias or ill-formed: skip the statement.
    i_ = j;
    skip_to_semicolon();
  }

  void handle_class() {
    std::size_t j = i_ + 1;
    // Skip attributes / export macros conservatively: take the LAST
    // identifier chain before ':' / '{' / ';' as the class name.
    std::vector<std::string> name;
    while (j < t_.size()) {
      const Token& tok = t_[j];
      if (tok.kind == Token::Kind::kIdent && tok.text != "final") {
        name.clear();
        name.push_back(tok.text);
        ++j;
        while (punct_at(j, "::") && j + 1 < t_.size() &&
               t_[j + 1].kind == Token::Kind::kIdent) {
          name.push_back(t_[j + 1].text);
          j += 2;
        }
        if (punct_at(j, "<")) j = skip_angles(t_, j);  // specialization
        continue;
      }
      if (tok.text == ":" || tok.text == "final") {
        // Base-clause (or final): scan forward to the body brace.
        while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
        continue;
      }
      break;
    }
    if (punct_at(j, "{")) {
      scopes_.push_back(ScopeEnt{std::move(name), true});
      i_ = j + 1;
      return;
    }
    // Forward declaration, variable of class type, etc.
    i_ = j < t_.size() ? j + 1 : t_.size();
  }

  /// Binds a `guarded_by`/`affine` annotation covering `line` to the class
  /// member declared at the current token. Fires only at class scope and
  /// at a statement start; a declarator that turns out to be a function
  /// (hits '(' before a terminator) is left for try_function_def — a
  /// guarded_by there stays unbound and is reported by bad-pragma.
  void maybe_bind_field(int line) {
    const auto covering = ann_at_.find(line);
    if (covering == ann_at_.end()) return;
    bool pending = false;
    for (const std::size_t a : covering->second) pending |= !ann_bound_[a];
    if (!pending) return;
    if (scopes_.empty() || !scopes_.back().is_class) return;
    if (i_ > 0) {
      const std::string& prev = t_[i_ - 1].text;
      if (prev != ";" && prev != "{" && prev != "}" && prev != ":") return;
    }
    // Scan the declarator: the field name is the last identifier before
    // `;` / `=` / `{` / `[`. Template argument lists (which may contain
    // parentheses, e.g. std::function<LoadSample()>) are skipped whole.
    std::string name;
    for (std::size_t j = i_; j < t_.size() && j < i_ + 128;) {
      const std::string& s = t_[j].text;
      if (s == "<") {
        const std::size_t past = skip_angles(t_, j);
        if (past != j) {
          j = past;
          continue;
        }
      }
      if (s == ";" || s == "=" || s == "{" || s == "[") break;
      if (s == "(" || s == "}") return;  // a function or unparsable shape
      if (t_[j].kind == Token::Kind::kIdent) name = t_[j].text;
      ++j;
    }
    if (name.empty()) return;
    FieldDecl field;
    field.name = name;
    for (const ScopeEnt& scope : scopes_) {
      for (const std::string& part : scope.name) {
        if (!field.class_key.empty()) field.class_key += "::";
        field.class_key += part;
      }
    }
    field.file = path_;
    for (const std::size_t a : covering->second) {
      if (ann_bound_[a]) continue;
      const FieldAnnotation& ann = anns_[a];
      if (ann.kind == FieldAnnotation::Kind::kGuardedBy) {
        field.guard = ann.arg;
        field.guard_key = field.class_key.empty()
                              ? ann.arg
                              : field.class_key + "::" + ann.arg;
      } else {
        field.affinity = ann.arg;
      }
      field.line = ann.line;
      ann_bound_[a] = true;
    }
    out_.fields.push_back(std::move(field));
  }

  /// Attempts to parse a function definition starting at the current
  /// token; on failure just advances one token.
  void try_function_def() {
    // Find the name: an identifier directly followed by '(' (with the
    // `operator` family folded into one name).
    const std::size_t start = i_;
    std::size_t name_at = i_;
    std::string name = t_[i_].text;
    if (name == "operator") {
      // operator+, operator(), operator[], operator bool, ...
      std::size_t j = i_ + 1;
      if (punct_at(j, "(") && punct_at(j + 1, ")")) {
        name = "operator()";
        j += 2;
      } else {
        while (j < t_.size() && !punct_at(j, "(") && t_[j].text != ";" &&
               t_[j].text != "{" && j < i_ + 6) {
          name += t_[j].text;
          ++j;
        }
      }
      if (!punct_at(j, "(")) {
        ++i_;
        return;
      }
      name_at = j - 1;
    } else {
      if (statement_keywords().count(name) > 0 || !punct_at(i_ + 1, "(")) {
        ++i_;
        return;
      }
      // A member access at namespace scope is never a definition.
      if (i_ > 0 && (punct_at(i_ - 1, ".") || punct_at(i_ - 1, "->"))) {
        ++i_;
        return;
      }
    }
    // Collect the qualified prefix written before the name: `A::B::name`
    // (destructors fold '~' into the component).
    std::vector<std::string> written{name};
    std::size_t k = start;
    if (k > 0 && punct_at(k - 1, "~")) {
      written.back() = "~" + written.back();
      --k;
    }
    while (k >= 2 && punct_at(k - 1, "::") &&
           t_[k - 2].kind == Token::Kind::kIdent) {
      written.insert(written.begin(), t_[k - 2].text);
      k -= 2;
    }
    // Parameter list.
    std::size_t params_open = name_at + 1;
    std::size_t after = skip_group(t_, params_open);
    if (after >= t_.size()) {
      ++i_;
      return;
    }
    // Absorb the bits between the parameter list and the body.
    std::size_t j = after;
    bool is_def = false;
    for (std::size_t guard = 0; j < t_.size() && guard < 64; ++guard) {
      const std::string& s = t_[j].text;
      if (s == "{") {
        is_def = true;
        break;
      }
      if (s == ";") {
        i_ = j + 1;  // declaration
        return;
      }
      if (s == "=") {
        skip_declaration_tail(j);  // = default / = delete / = 0
        return;
      }
      if (s == ":") {
        if (!absorb_member_init_list(j)) {
          ++i_;
          return;
        }
        is_def = punct_at(j, "{");
        break;
      }
      if (s == "(") {  // noexcept(...), decltype in trailing return
        j = skip_group(t_, j);
        continue;
      }
      if (s == "<") {
        const std::size_t skipped = skip_angles(t_, j);
        j = skipped == j ? j + 1 : skipped;
        continue;
      }
      if (t_[j].kind == Token::Kind::kIdent || s == "&" || s == "&&" ||
          s == "*" || s == "->" || s == "," || s == "::" || s == "[" ||
          s == "]" || s == ">") {
        ++j;
        continue;
      }
      ++i_;  // something unexpected: not a definition
      return;
    }
    if (!is_def || !punct_at(j, "{")) {
      i_ = std::max(i_ + 1, j);
      return;
    }
    FunctionDef fn;
    fn.file = path_;
    fn.line = t_[name_at].line;
    // An `affine(root)` annotation on (or above) the definition line pins
    // the whole function to that thread root.
    const auto covering = ann_at_.find(fn.line);
    if (covering != ann_at_.end()) {
      for (const std::size_t a : covering->second) {
        if (ann_bound_[a]) continue;
        if (anns_[a].kind != FieldAnnotation::Kind::kAffine) continue;
        fn.affinity = anns_[a].arg;
        ann_bound_[a] = true;
      }
    }
    for (const ScopeEnt& scope : scopes_) {
      fn.qualified.insert(fn.qualified.end(), scope.name.begin(),
                          scope.name.end());
    }
    // Drop a written prefix that repeats the innermost scope
    // (`void EventFront::shutdown()` defined at namespace scope).
    fn.qualified.insert(fn.qualified.end(), written.begin(), written.end());
    fn.display = join(fn.qualified);
    parse_body(j + 1, fn);
    out_.functions.push_back(std::move(fn));
  }

  /// `= default;` / `= delete;` / `= 0;` after a declarator.
  void skip_declaration_tail(std::size_t j) {
    while (j < t_.size() && t_[j].text != ";") ++j;
    i_ = j < t_.size() ? j + 1 : t_.size();
  }

  /// Consumes a constructor member-init list starting at ':' and leaves
  /// `j` at the body's '{'. Returns false when the shape is not an init
  /// list after all.
  bool absorb_member_init_list(std::size_t& j) {
    ++j;  // past ':'
    for (std::size_t guard = 0; j < t_.size() && guard < 512; ++guard) {
      // member name (possibly qualified/templated base)
      while (j < t_.size() && (t_[j].kind == Token::Kind::kIdent ||
                               t_[j].text == "::")) {
        ++j;
      }
      if (punct_at(j, "<")) j = skip_angles(t_, j);
      if (j >= t_.size()) return false;
      if (t_[j].text != "(" && t_[j].text != "{") return false;
      j = skip_group(t_, j);
      if (punct_at(j, ",")) {
        ++j;
        continue;
      }
      if (punct_at(j, "...")) ++j;  // pack expansion
      return punct_at(j, "{");
    }
    return false;
  }

  static std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const std::string& p : parts) {
      if (!out.empty()) out += "::";
      out += p;
    }
    return out;
  }

  /// The scope a member name belongs to: the function's qualified name
  /// minus the function component itself.
  static std::string owner_of(const FunctionDef& fn) {
    std::string out;
    for (std::size_t q = 0; q + 1 < fn.qualified.size(); ++q) {
      if (!out.empty()) out += "::";
      out += fn.qualified[q];
    }
    return out;
  }

  /// Walks one function body starting just past its '{'; fills calls,
  /// locks, and allocs; leaves i_ just past the matching '}'.
  void parse_body(std::size_t start, FunctionDef& fn) {
    const std::string owner = owner_of(fn);
    int depth = 1;
    std::vector<ActiveLock> held;
    std::size_t throw_end = 0;  // token index bounding the active throw expr
    std::size_t j = start;
    while (j < t_.size() && depth > 0) {
      const Token& tok = t_[j];
      if (tok.kind == Token::Kind::kPunct) {
        if (tok.text == "{") {
          ++depth;
        } else if (tok.text == "}") {
          --depth;
          // Scoped guards die with their block.
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const ActiveLock& l) {
                                      return !l.manual && l.decl_depth > depth;
                                    }),
                     held.end());
        }
        ++j;
        continue;
      }
      if (tok.kind != Token::Kind::kIdent) {
        ++j;
        continue;
      }
      const bool in_throw = j < throw_end;
      const std::string& word = tok.text;
      if (word == "throw") {
        std::size_t e = j + 1;
        while (e < t_.size() && t_[e].text != ";" && t_[e].text != "}") ++e;
        throw_end = e;
        ++j;
        continue;
      }
      if (is_guard_type(word) && !punct_at(j + 1, "::")) {
        const std::size_t next = parse_guard(j, owner, depth, held, fn);
        if (next > j) {
          j = next;
          continue;
        }
        ++j;
        continue;
      }
      if ((word == "lock" || word == "unlock") && j > 0 &&
          (punct_at(j - 1, ".") || punct_at(j - 1, "->")) &&
          punct_at(j + 1, "(") && punct_at(j + 2, ")")) {
        if (handle_manual_lock(j, word == "lock", owner, held, fn)) {
          j += 3;
          continue;
        }
      }
      if (word == "std" && punct_at(j + 1, "::")) {
        const std::size_t next = try_flat_alloc(j, in_throw, fn);
        if (next > j) {
          j = next;
          continue;
        }
      }
      if (word == "operator") {
        ++j;
        continue;
      }
      // Plain call site: IDENT '('.
      if (punct_at(j + 1, "(") && statement_keywords().count(word) == 0 &&
          !is_guard_type(word)) {
        record_call(j, in_throw, held, fn);
      } else if (!punct_at(j + 1, "(")) {
        record_access(j, held, fn);
      }
      ++j;
    }
    i_ = j;
  }

  /// Declaration/type keywords whose appearance in value position is
  /// never a member access worth recording.
  static bool access_ignored(const std::string& word) {
    static const std::set<std::string> kWords = {
        "auto",      "bool",     "break",    "char",      "const",
        "constexpr", "continue", "default",  "double",    "enum",
        "explicit",  "false",    "float",    "inline",    "int",
        "long",      "mutable",  "nullptr",  "private",   "protected",
        "public",    "short",    "signed",   "static",    "std",
        "struct",    "this",     "true",     "try",       "typename",
        "union",     "unsigned", "using",    "void",      "volatile",
        "class",     "namespace", "template", "virtual",  "final",
        "override",  "noexcept",
    };
    return kWords.count(word) > 0;
  }

  /// Records a value-position identifier as a field access candidate: the
  /// guarded-field / thread-affinity rules filter these against the
  /// annotated-field roster at link time, so over-recording locals and
  /// type names here is harmless.
  void record_access(std::size_t j, const std::vector<ActiveLock>& held,
                     FunctionDef& fn) {
    const std::string& word = t_[j].text;
    if (statement_keywords().count(word) > 0 || access_ignored(word) ||
        is_guard_type(word)) {
      return;
    }
    if (punct_at(j + 1, "::")) return;           // scope-prefix position
    if (j > 0 && punct_at(j - 1, "::")) return;  // qualified-name component
    FieldAccess access;
    access.name = word;
    access.line = t_[j].line;
    std::size_t chain_start = j;
    if (j > 0 && (punct_at(j - 1, ".") || punct_at(j - 1, "->"))) {
      access.receiver = (j >= 2 && t_[j - 2].kind == Token::Kind::kIdent)
                            ? t_[j - 2].text
                            : std::string("<expr>");
      if (access.receiver == "this") access.receiver.clear();
      // Walk back over the receiver chain so prefix ++/-- lands on it.
      std::size_t first = j;
      while (first >= 2 &&
             (punct_at(first - 1, ".") || punct_at(first - 1, "->")) &&
             t_[first - 2].kind == Token::Kind::kIdent) {
        first -= 2;
      }
      chain_start = first;
    }
    access.write = is_write_at(j, chain_start);
    for (const ActiveLock& l : held) {
      access.held_keys.push_back(l.key);
      access.held_names.push_back(l.name);
    }
    fn.accesses.push_back(std::move(access));
  }

  /// Assignment / compound assignment / increment / decrement targeting
  /// the access at `j` (whose receiver chain starts at `chain_start`).
  bool is_write_at(std::size_t j, std::size_t chain_start) const {
    if (punct_at(j + 1, "=") && !punct_at(j + 2, "=")) return true;
    static const char* const kCompound[] = {"+", "-", "*", "/",
                                            "%", "&", "|", "^"};
    for (const char* const op : kCompound) {
      if (punct_at(j + 1, op) && punct_at(j + 2, "=")) return true;
    }
    if ((punct_at(j + 1, "+") && punct_at(j + 2, "+")) ||
        (punct_at(j + 1, "-") && punct_at(j + 2, "-"))) {
      return true;
    }
    if (chain_start >= 2 &&
        ((punct_at(chain_start - 1, "+") && punct_at(chain_start - 2, "+")) ||
         (punct_at(chain_start - 1, "-") && punct_at(chain_start - 2, "-")))) {
      return true;
    }
    return false;
  }

  /// `std::lock_guard [<T>] var ( args )` and friends. Returns the index
  /// just past the declaration, or `j` when it isn't a guard declaration.
  std::size_t parse_guard(std::size_t j, const std::string& owner, int depth,
                          std::vector<ActiveLock>& held, FunctionDef& fn) {
    std::size_t k = j + 1;
    if (punct_at(k, "<")) {
      const std::size_t skipped = skip_angles(t_, k);
      if (skipped == k) return j;
      k = skipped;
    }
    std::string var;
    if (k < t_.size() && t_[k].kind == Token::Kind::kIdent) {
      var = t_[k].text;
      ++k;
    }
    if (!punct_at(k, "(") && !punct_at(k, "{")) return j;
    const std::size_t args_open = k;
    const std::size_t past = skip_group(t_, args_open);
    // Split the top-level comma-separated arguments.
    std::vector<std::vector<std::size_t>> args(1);
    int inner = 0;
    for (std::size_t a = args_open + 1; a + 1 < past; ++a) {
      const std::string& s = t_[a].text;
      if (s == "(" || s == "{" || s == "[" || s == "<") ++inner;
      else if (s == ")" || s == "}" || s == "]" || s == ">") --inner;
      else if (s == "," && inner == 0) {
        args.emplace_back();
        continue;
      }
      args.back().push_back(a);
    }
    bool deferred = false;
    std::vector<std::string> mutexes;
    for (const auto& arg : args) {
      std::string last_ident;
      bool tag = false;
      for (const std::size_t a : arg) {
        if (t_[a].kind != Token::Kind::kIdent) continue;
        if (t_[a].text == "defer_lock" || t_[a].text == "adopt_lock" ||
            t_[a].text == "try_to_lock") {
          tag = true;
          if (t_[a].text == "defer_lock" || t_[a].text == "adopt_lock") {
            deferred = true;  // adopt: already held via manual .lock()
          }
        }
        if (t_[a].text != "std") last_ident = t_[a].text;
      }
      if (!tag && !last_ident.empty()) mutexes.push_back(last_ident);
    }
    if (!deferred) {
      std::vector<std::string> held_keys, held_names;
      for (const ActiveLock& l : held) {
        held_keys.push_back(l.key);
        held_names.push_back(l.name);
      }
      for (const std::string& m : mutexes) {
        LockAcquire acq;
        acq.name = m;
        acq.key = owner.empty() ? m : owner + "::" + m;
        acq.line = t_[j].line;
        acq.held_keys = held_keys;    // siblings of one scoped_lock do not
        acq.held_names = held_names;  // order against each other
        fn.locks.push_back(acq);
      }
      for (const std::string& m : mutexes) {
        ActiveLock l;
        l.name = m;
        l.key = owner.empty() ? m : owner + "::" + m;
        l.guard_var = var;
        l.decl_depth = depth;
        held.push_back(l);
      }
    }
    return past;
  }

  /// Statement-position `mu.lock()` / `mu.unlock()` (and guard.unlock()).
  /// Value-position calls like `weak.lock()` are left to call recording.
  bool handle_manual_lock(std::size_t j, bool is_lock, const std::string& owner,
                          std::vector<ActiveLock>& held, FunctionDef& fn) {
    // Receiver chain: IDENT ((. | -> | ::) IDENT)* directly before.
    std::size_t first = j - 1;  // at '.' or '->'
    std::string receiver;
    while (first > 0) {
      if (t_[first].kind == Token::Kind::kPunct &&
          (t_[first].text == "." || t_[first].text == "->" ||
           t_[first].text == "::")) {
        --first;
        continue;
      }
      if (t_[first].kind == Token::Kind::kIdent) {
        if (receiver.empty()) receiver = t_[first].text;
        if (first == 0) break;
        const std::string& prev = t_[first - 1].text;
        if (prev == "." || prev == "->" || prev == "::") {
          --first;
          continue;
        }
      }
      break;
    }
    // The chain must start a statement for this to be a mutex operation.
    const std::string& before =
        first > 0 ? t_[first - 1].text : std::string(";");
    if (before != ";" && before != "{" && before != "}" && before != ")") {
      return false;
    }
    // The mutex (or guard) name is the identifier right before `.lock`.
    std::string name;
    if (j >= 2 && t_[j - 2].kind == Token::Kind::kIdent) name = t_[j - 2].text;
    if (name.empty()) return false;
    if (is_lock) {
      std::vector<std::string> held_keys, held_names;
      for (const ActiveLock& l : held) {
        held_keys.push_back(l.key);
        held_names.push_back(l.name);
      }
      LockAcquire acq;
      acq.name = name;
      acq.key = owner.empty() ? name : owner + "::" + name;
      acq.line = t_[j].line;
      acq.held_keys = std::move(held_keys);
      acq.held_names = std::move(held_names);
      fn.locks.push_back(acq);
      ActiveLock l;
      l.name = name;
      l.key = acq.key;
      l.manual = true;
      held.push_back(l);
    } else {
      // Release by guard variable first, then by mutex name, newest first.
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->guard_var == name || it->name == name) {
          held.erase(std::next(it).base());
          break;
        }
      }
    }
    return true;
  }

  /// `std::string x` / `std::string(...)` / `std::vector<char> v` — the
  /// flat-copy constructions the hot-path rule bans. Returns the index
  /// just past the matched type name, or `j` when there is no match.
  std::size_t try_flat_alloc(std::size_t j, bool in_throw, FunctionDef& fn) {
    const std::size_t type_at = j + 2;
    if (type_at >= t_.size() || t_[type_at].kind != Token::Kind::kIdent) {
      return j;
    }
    const std::string& type = t_[type_at].text;
    std::size_t end = type_at + 1;
    std::string what;
    if (type == "string") {
      what = "std::string";
    } else if (type == "vector" && punct_at(end, "<")) {
      const std::size_t past = skip_angles(t_, end);
      if (past == end) return j;
      std::string flat;
      for (std::size_t a = end + 1; a + 1 < past; ++a) {
        if (t_[a].kind == Token::Kind::kIdent &&
            (t_[a].text == "char" || t_[a].text == "uint8_t" ||
             t_[a].text == "int8_t" || t_[a].text == "byte")) {
          flat = t_[a].text;
        }
      }
      if (flat.empty()) return j;
      what = "std::vector<" + flat + ">";
      end = past;
    } else {
      return j;
    }
    // Construction position: a declared variable or a temporary. A
    // reference/pointer/parameter-ish use (&, *, >, comma, closer) is not
    // a construction.
    if (end < t_.size() &&
        (t_[end].kind == Token::Kind::kIdent || t_[end].text == "(" ||
         t_[end].text == "{")) {
      fn.allocs.push_back(FlatAlloc{what, t_[type_at].line, in_throw});
    }
    return end;
  }

  /// Keywords that may directly precede a call expression. Any OTHER
  /// identifier before `name(` means `Type name(args)` — a declaration,
  /// not a call (`Bytes copy(...)` must not become an edge to a `copy`
  /// method somewhere in the repo).
  static bool value_position_keyword(const std::string& word) {
    static const std::set<std::string> kWords = {
        "return", "co_return", "co_await", "co_yield",
        "throw",  "case",      "else",     "do",
    };
    return kWords.count(word) > 0;
  }

  void record_call(std::size_t j, bool in_throw,
                   const std::vector<ActiveLock>& held, FunctionDef& fn) {
    CallSite call;
    call.line = t_[j].line;
    call.in_throw = in_throw;
    call.path.push_back(t_[j].text);
    // Qualified prefix written at the call site.
    std::size_t k = j;
    while (k >= 2 && punct_at(k - 1, "::") &&
           t_[k - 2].kind == Token::Kind::kIdent) {
      call.path.insert(call.path.begin(), t_[k - 2].text);
      k -= 2;
    }
    // `::open(fd, ...)` — a bare global qualifier marks a libc/system
    // call. Every repo function lives in a namespace, so the call cannot
    // resolve here and must not match repo methods (`::shutdown(fd, ...)`
    // is not an edge to EventFront::shutdown, and `::accept` on a
    // nonblocking fd is not the repo's blocking TcpListener::accept).
    if (k >= 1 && punct_at(k - 1, "::") &&
        (k < 2 || t_[k - 2].kind != Token::Kind::kIdent)) {
      return;
    }
    // Receiver before a trailing `.`/`->` on the first component. A
    // non-identifier receiver expression (`policy_.file().attribute()`)
    // is recorded as "<expr>" so resolution knows this is a member call
    // on some other object, not an implicit-this call.
    if (k >= 1 && (punct_at(k - 1, ".") || punct_at(k - 1, "->"))) {
      call.receiver = (k >= 2 && t_[k - 2].kind == Token::Kind::kIdent)
                          ? t_[k - 2].text
                          : std::string("<expr>");
    } else if (call.path.size() == 1 && k >= 1 &&
               t_[k - 1].kind == Token::Kind::kIdent &&
               !value_position_keyword(t_[k - 1].text)) {
      return;  // `Type name(args)` — a declaration, not a call
    }
    for (const ActiveLock& l : held) {
      call.held_keys.push_back(l.key);
      call.held_names.push_back(l.name);
    }
    // `cv.wait(guard, ...)`: the guard's lock is released while waiting.
    if ((t_[j].text == "wait" || t_[j].text == "wait_for" ||
         t_[j].text == "wait_until") &&
        !call.receiver.empty() && punct_at(j + 1, "(") &&
        j + 2 < t_.size() && t_[j + 2].kind == Token::Kind::kIdent &&
        (punct_at(j + 3, ",") || punct_at(j + 3, ")"))) {
      const std::string& arg = t_[j + 2].text;
      for (const ActiveLock& l : held) {
        if (!l.guard_var.empty() && l.guard_var == arg) {
          call.released_key = l.key;
          break;
        }
      }
    }
    fn.calls.push_back(std::move(call));
  }

  const std::string& path_;
  const std::vector<Token>& t_;
  const std::vector<FieldAnnotation>& anns_;
  std::vector<char> ann_bound_;  // parallel to anns_: bound to a decl?
  std::map<int, std::vector<std::size_t>> ann_at_;  // line -> covering anns
  std::size_t i_ = 0;
  std::vector<ScopeEnt> scopes_;
  FileGraph out_;
};

bool ends_with_components(const std::vector<std::string>& qualified,
                          const std::vector<std::string>& suffix) {
  if (suffix.size() > qualified.size()) return false;
  const std::size_t off = qualified.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (qualified[off + i] != suffix[i]) return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> split_qualified(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= name.size()) {
    const std::size_t next = name.find("::", pos);
    if (next == std::string::npos) {
      parts.push_back(name.substr(pos));
      break;
    }
    parts.push_back(name.substr(pos, next - pos));
    pos = next + 2;
  }
  parts.erase(std::remove(parts.begin(), parts.end(), std::string()),
              parts.end());
  return parts;
}

FileGraph parse_file_graph(const std::string& path, const Scan& scan) {
  return FileParser(path, scan).run();
}

namespace {

/// src/<sub>/... -> "sub" (matching lint.cpp's layering rule); "" outside.
std::string file_subsystem(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return {};
  const std::string below = rel_path.substr(4);
  const std::size_t slash = below.find('/');
  return slash == std::string::npos ? below : below.substr(0, slash);
}

}  // namespace

CallGraph::CallGraph(const std::vector<const FileGraph*>& files,
                     std::map<std::string, std::set<std::string>> layering)
    : layering_(std::move(layering)) {
  std::map<std::string, int> by_display;
  for (const FileGraph* fg : files) {
    for (const FunctionDef& fn : fg->functions) {
      auto [it, inserted] = by_display.emplace(
          fn.display, static_cast<int>(nodes_.size()));
      if (inserted) {
        Node node;
        node.display = fn.display;
        node.qualified = fn.qualified;
        nodes_.push_back(std::move(node));
      }
      nodes_[it->second].defs.push_back(&fn);
      nodes_[it->second].subsystems.insert(file_subsystem(fn.file));
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    by_last_[nodes_[i].qualified.back()].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::set<int> targets;
    for (const FunctionDef* def : nodes_[i].defs) {
      for (const CallSite& call : def->calls) {
        for (const int target : resolve_call(nodes_[i], call)) {
          targets.insert(target);
        }
      }
    }
    targets.erase(static_cast<int>(i));  // self-recursion adds nothing
    nodes_[i].callees.assign(targets.begin(), targets.end());
  }
}

bool CallGraph::add_edge(const std::string& caller, const std::string& callee) {
  const std::vector<int> from = match_suffix(caller);
  const std::vector<int> to = match_suffix(callee);
  if (from.empty() || to.empty()) return false;
  for (const int f : from) {
    for (const int t : to) {
      if (t == f) continue;
      auto& out = nodes_[f].callees;
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    }
  }
  return true;
}

std::vector<int> CallGraph::resolve(
    const std::vector<std::string>& path) const {
  std::vector<int> out;
  if (path.empty()) return out;
  const auto it = by_last_.find(path.back());
  if (it == by_last_.end()) return out;
  for (const int idx : it->second) {
    if (ends_with_components(nodes_[idx].qualified, path)) out.push_back(idx);
  }
  return out;
}

std::vector<int> CallGraph::match_suffix(const std::string& pattern) const {
  return resolve(split_qualified(pattern));
}

bool CallGraph::same_scope(const Node& a, const Node& b) {
  return a.qualified.size() == b.qualified.size() &&
         a.qualified.size() >= 2 &&
         std::equal(a.qualified.begin(), a.qualified.end() - 1,
                    b.qualified.begin());
}

bool CallGraph::edge_allowed(const Node& caller, const Node& callee) const {
  if (layering_.empty()) return true;
  for (const std::string& from : caller.subsystems) {
    if (from.empty()) return true;  // tools compose freely
    const auto allowed = layering_.find(from);
    for (const std::string& to : callee.subsystems) {
      if (to == from) return true;
      if (allowed != layering_.end() && allowed->second.count(to) > 0) {
        return true;
      }
    }
  }
  return false;
}

std::vector<int> CallGraph::resolve_call(const Node& caller,
                                         const CallSite& call) const {
  // `cv.wait(guard, ...)` is a condition-variable wait, not a call into
  // the graph — a repo function that happens to be named `wait` (e.g.
  // net::Poller's) must not inherit the cv's call sites.
  if (!call.released_key.empty()) return {};
  const bool implicit = call.receiver.empty() || call.receiver == "this";
  const bool unqualified = call.path.size() == 1;
  std::vector<int> out;
  for (const int n : resolve(call.path)) {
    if (!edge_allowed(caller, nodes_[n])) continue;
    // `x.f()` names some OTHER object: a same-class candidate would alias
    // this instance's locks under our class-keyed lock identity, so the
    // explicit receiver drops it (`policy_.file().attribute()` is not a
    // recursive QualityManager::attribute call).
    if (!implicit && unqualified && same_scope(caller, nodes_[n])) continue;
    out.push_back(n);
  }
  if (implicit && unqualified && out.size() > 1) {
    std::vector<int> same;
    for (const int n : out) {
      if (same_scope(caller, nodes_[n])) same.push_back(n);
    }
    if (!same.empty()) return same;
  }
  // An ambiguous receiver-ful call (`plans_.size()`, `counter.load(...)`)
  // is almost always an STL member whose name collides with repo methods;
  // fanning out to every candidate wires sibling classes' locks together.
  // The receiver's type is unknowable here, so resolve only a unique
  // match and let `sbqlint:edge` declare the ones that matter.
  if (!implicit && unqualified && out.size() > 1) return {};
  return out;
}

std::vector<bool> CallGraph::reach(const std::vector<int>& roots,
                                   std::vector<int>* parent) const {
  std::vector<bool> seen(nodes_.size(), false);
  if (parent) parent->assign(nodes_.size(), -1);
  std::vector<int> queue;
  for (const int r : roots) {
    if (r >= 0 && r < static_cast<int>(nodes_.size()) && !seen[r]) {
      seen[r] = true;
      queue.push_back(r);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int n = queue[head];
    for (const int callee : nodes_[n].callees) {
      if (seen[callee]) continue;
      seen[callee] = true;
      if (parent) (*parent)[callee] = n;
      queue.push_back(callee);
    }
  }
  return seen;
}

std::string CallGraph::path_to(int node, const std::vector<int>& parent) const {
  std::vector<int> chain;
  for (int n = node; n >= 0; n = parent[n]) {
    chain.push_back(n);
    if (chain.size() > nodes_.size()) break;  // defensive
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += nodes_[*it].display;
  }
  return out;
}

std::size_t CallGraph::edge_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) n += node.callees.size();
  return n;
}

}  // namespace sbq::lint
