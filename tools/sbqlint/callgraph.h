// sbqlint call graph — pass 1 of the two-pass analyzer.
//
// parse_file_graph() walks a file's token stream with a scope stack
// (namespaces, classes, function bodies) and extracts, per function
// definition: the calls it makes, the locks it acquires (scoped guards
// and statement-position `mutex.lock()`), the flat-buffer
// constructions the hot-path rule cares about, and every field access in
// value position (with the lock set held there). Class-scope declarations
// carrying `sbqlint:guarded_by` / `sbqlint:affine` annotations are bound
// to FieldDecls, and `sbqlint:affine` on a definition line marks the
// function itself. CallGraph then folds
// every definition across all translation units into nodes keyed by
// qualified name (overload sets merge into one node — a deliberate
// over-approximation) and resolves call sites to nodes by qualified-name
// suffix match: `a::b::f` matches a call written `b::f` or `f`.
//
// Known, documented approximations (docs/static-analysis.md):
//   - an unqualified call `f(...)` matches EVERY node whose last
//     component is `f` (method vs free function of the same name merge
//     for reachability purposes);
//   - lambdas are analyzed as part of their enclosing function, so a
//     lambda handed to a thread or callback registry attributes its
//     calls to the function that created it — which is exactly the edge
//     the graph wants for `workers.emplace_back([this] { loop(); })`;
//   - edges through function pointers / std::function values the parser
//     cannot see are declared with `// sbqlint:edge(caller -> callee)`;
//   - lock identity is `<owning scope>::<member name>`, a lock-CLASS
//     key: two instances of the same member (e.g. a pipe's two endpoint
//     mutexes) share a key. Right for ordering analysis, blind to
//     instance-level aliasing.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sbqlint/tokenizer.h"

namespace sbq::lint {

/// One lock acquisition inside a function body.
struct LockAcquire {
  std::string name;  // display name, e.g. "completion_mu"
  std::string key;   // scoped identity, e.g. "EventFront::Impl::completion_mu"
  int line = 0;
  std::vector<std::string> held_keys;   // lock keys already held here
  std::vector<std::string> held_names;  // parallel display names
};

/// One call site inside a function body.
struct CallSite {
  std::vector<std::string> path;  // qualified components as written
  std::string receiver;  // identifier before a trailing `.`/`->`, or ""
  int line = 0;
  std::vector<std::string> held_keys;   // lock keys held at the call
  std::vector<std::string> held_names;  // parallel display names
  /// Condition-variable wait pattern `cv.wait(guard, ...)`: the lock the
  /// guard holds is released for the duration of the wait.
  std::string released_key;
  bool in_throw = false;  // inside a throw expression: leaving the fast path
};

/// One flat-buffer construction (std::string / std::vector<char> and kin).
struct FlatAlloc {
  std::string what;  // e.g. "std::string"
  int line = 0;
  bool in_throw = false;
};

/// One field access inside a function body: a member-ish identifier in
/// value position (not a call, not a qualified-name component). Recorded
/// for every identifier; the guarded-field / thread-affinity rules filter
/// against the annotated-field roster at link time.
struct FieldAccess {
  std::string name;      // field identifier as written
  std::string receiver;  // identifier before `.`/`->`; "" = implicit this
  bool write = false;    // assignment / compound-assignment / ++ / --
  int line = 0;
  std::vector<std::string> held_keys;   // lock keys held at the access
  std::vector<std::string> held_names;  // parallel display names
};

/// A class field carrying a `guarded_by` / `affine` annotation, bound to
/// its declaration by the parser.
struct FieldDecl {
  std::string name;       // field identifier
  std::string class_key;  // owning scope, e.g. "sbq::qos::LoadMonitor"
  std::string guard;      // mutex member name ("" = not lock-guarded)
  std::string guard_key;  // class_key + "::" + guard
  std::string affinity;   // thread-root name ("" = no affinity)
  std::string file;
  int line = 0;  // annotation line (for "annotated at" in findings)
};

struct FunctionDef {
  std::string file;
  int line = 0;  // definition line — the scope of a function-level pragma
  std::vector<std::string> qualified;  // scope components + name
  std::string display;                 // qualified joined with "::"
  std::string affinity;  // thread-root name from `sbqlint:affine` ("" = none)
  std::vector<CallSite> calls;
  std::vector<LockAcquire> locks;
  std::vector<FlatAlloc> allocs;
  std::vector<FieldAccess> accesses;
};

struct FileGraph {
  std::vector<FunctionDef> functions;
  std::vector<FieldDecl> fields;  // annotated field declarations
  /// Indices into Scan::annotations that bound to a field or function;
  /// the bad-pragma rule reports the rest as dangling.
  std::vector<std::size_t> bound_annotations;
};

/// Pass 1 for one file: extract function definitions from the token stream.
FileGraph parse_file_graph(const std::string& path, const Scan& scan);

/// The folded, cross-TU graph (pass 2 substrate).
class CallGraph {
 public:
  struct Node {
    std::string display;
    std::vector<std::string> qualified;
    std::vector<const FunctionDef*> defs;  // overloads + out-of-line splits
    std::vector<int> callees;              // resolved + pragma edges, deduped
    std::set<std::string> subsystems;      // src/ subsystems of defs; "" = tools
  };

  /// Folds every file's functions into nodes and resolves every call site.
  /// The FileGraphs must outlive the CallGraph. `layering` (the subsystem
  /// DAG from Config) prunes name-match edges that no #include could
  /// carry: a `common` function's `chunks_.end()` cannot resolve to a
  /// method in `pbio`. An empty map disables the pruning (tests).
  explicit CallGraph(const std::vector<const FileGraph*>& files,
                     std::map<std::string, std::set<std::string>> layering = {});

  /// Adds a `sbqlint:edge(caller -> callee)` pragma edge. Both sides are
  /// suffix patterns; returns false (no edge) if either side resolves to
  /// no node, so the caller can report the dangling pragma.
  bool add_edge(const std::string& caller, const std::string& callee);

  const std::vector<Node>& nodes() const { return nodes_; }

  /// All nodes whose qualified name ends with the call path's components.
  std::vector<int> resolve(const std::vector<std::string>& path) const;

  /// resolve() for a call site seen from `caller`: an unqualified call
  /// with no receiver (or `this->`) that matches a function in the
  /// caller's own scope resolves to that scope only — `dispatch(...)`
  /// inside EventFront::Impl means Impl::dispatch, not every dispatch in
  /// the repo. Receiver-ful calls keep the full over-approximation (the
  /// receiver could be any type).
  std::vector<int> resolve_call(const Node& caller, const CallSite& call) const;

  /// All nodes matching an `A::B::f`-style suffix pattern (roots, pragmas).
  std::vector<int> match_suffix(const std::string& pattern) const;

  /// Forward reachability from `roots`; parent[n] = the caller that first
  /// reached n (or -1 for roots), for witness-path reconstruction.
  std::vector<bool> reach(const std::vector<int>& roots,
                          std::vector<int>* parent = nullptr) const;

  /// Human-readable witness path root -> ... -> node ("a -> b -> c").
  std::string path_to(int node, const std::vector<int>& parent) const;

  std::size_t edge_count() const;

 private:
  bool edge_allowed(const Node& caller, const Node& callee) const;
  static bool same_scope(const Node& a, const Node& b);

  std::vector<Node> nodes_;
  std::map<std::string, std::vector<int>> by_last_;  // last component -> nodes
  std::map<std::string, std::set<std::string>> layering_;
};

/// Splits "a::b::c" into components.
std::vector<std::string> split_qualified(const std::string& name);

}  // namespace sbq::lint
