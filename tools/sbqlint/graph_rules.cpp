#include "sbqlint/graph_rules.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <string>

namespace sbq::lint {

namespace {

/// Reports graph findings with both suppression scopes: a line pragma at
/// the finding, or a function-level pragma on the attributed function's
/// definition line (in the function's own file).
class Reporter {
 public:
  Reporter(const std::vector<ProgramFile>& files,
           std::vector<Finding>& findings)
      : findings_(findings) {
    for (const ProgramFile& file : files) scans_[file.path] = &file.scan;
  }

  bool line_allowed(const std::string& file, int line,
                    const std::string& rule) const {
    const auto it = scans_.find(file);
    if (it == scans_.end()) return false;
    const auto at = it->second->allowances.find(line);
    return at != it->second->allowances.end() && at->second.count(rule) > 0;
  }

  void report(const FunctionDef* fn, const std::string& file, int line,
              const std::string& rule, const std::string& message) {
    if (line_allowed(file, line, rule)) return;
    if (fn != nullptr && line_allowed(fn->file, fn->line, rule)) return;
    const auto key = std::make_tuple(file, line, rule);
    if (!reported_.insert(key).second) return;
    findings_.push_back(Finding{file, line, rule, message});
  }

 private:
  std::vector<Finding>& findings_;
  std::map<std::string, const Scan*> scans_;
  std::set<std::tuple<std::string, int, std::string>> reported_;
};

std::string call_name(const CallSite& call) {
  std::string out;
  for (const std::string& part : call.path) {
    if (!out.empty()) out += "::";
    out += part;
  }
  return out;
}

/// A call site that hits a blocking primitive by name, unless its
/// receiver is exempt (the poller's own wait is the one blessed block).
bool is_blocking_call(const CallSite& call, const Config& config) {
  if (config.blocking_calls.count(call.path.back()) == 0) return false;
  if (!call.receiver.empty() &&
      config.blocking_exempt_receivers.count(call.receiver) > 0) {
    return false;
  }
  return true;
}

std::vector<int> collect_roots(const CallGraph& graph,
                               const std::set<std::string>& patterns) {
  std::vector<int> roots;
  for (const std::string& pattern : patterns) {
    for (const int n : graph.match_suffix(pattern)) roots.push_back(n);
  }
  return roots;
}

std::string held_list(const CallSite& call) {
  std::string out;
  for (std::size_t i = 0; i < call.held_keys.size(); ++i) {
    if (call.held_keys[i] == call.released_key) continue;
    if (!out.empty()) out += "', '";
    out += call.held_names[i];
  }
  return out;
}

// -------------------------------------------------------------------------
// event-loop-blocking
// -------------------------------------------------------------------------

void check_event_loop_blocking(const CallGraph& graph, const Config& config,
                               Reporter& reporter) {
  std::vector<int> parent;
  const std::vector<int> roots = collect_roots(graph, config.event_roots);
  const std::vector<bool> reachable = graph.reach(roots, &parent);
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (!reachable[n]) continue;
    for (const FunctionDef* def : graph.nodes()[n].defs) {
      for (const CallSite& call : def->calls) {
        if (!is_blocking_call(call, config)) continue;
        reporter.report(
            def, def->file, call.line, "event-loop-blocking",
            "'" + call_name(call) +
                "' may block the event runtime (reachable: " +
                graph.path_to(static_cast<int>(n), parent) +
                "); nothing on the poller path may block — hand the work "
                "to a worker or use the nonblocking surface");
      }
    }
  }
}

// -------------------------------------------------------------------------
// lock-discipline
// -------------------------------------------------------------------------

struct LockWitness {
  const FunctionDef* fn = nullptr;
  std::string file;
  int line = 0;
  std::string from_name;
  std::string to_name;
};

void check_lock_discipline(const CallGraph& graph, const Config& config,
                           Reporter& reporter) {
  const auto& nodes = graph.nodes();
  const int count = static_cast<int>(nodes.size());

  // may_block: reverse propagation from direct blocking call sites, with a
  // next-hop chain for witness messages.
  std::vector<std::string> direct_prim(count);
  std::vector<int> next_hop(count, -2);  // -2 unset, -1 blocks directly
  std::vector<std::vector<int>> rev(count);
  for (int n = 0; n < count; ++n) {
    for (const int callee : nodes[n].callees) rev[callee].push_back(n);
    for (const FunctionDef* def : nodes[n].defs) {
      for (const CallSite& call : def->calls) {
        if (direct_prim[n].empty() && is_blocking_call(call, config)) {
          // A cv wait that releases its own guard still blocks the thread.
          direct_prim[n] = call.path.back();
        }
      }
    }
  }
  std::vector<int> queue;
  for (int n = 0; n < count; ++n) {
    if (!direct_prim[n].empty()) {
      next_hop[n] = -1;
      queue.push_back(n);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int n = queue[head];
    for (const int caller : rev[n]) {
      if (next_hop[caller] != -2) continue;
      next_hop[caller] = n;
      queue.push_back(caller);
    }
  }
  auto may_block = [&](int n) { return next_hop[n] != -2; };
  auto block_witness = [&](int n) {
    std::string out = nodes[n].display;
    int hops = 0;
    while (next_hop[n] >= 0 && hops++ < count) {
      n = next_hop[n];
      out += " -> " + nodes[n].display;
    }
    return out + " -> " + direct_prim[n];
  };

  // acquires_transitive: lock keys a node (or anything it calls) takes.
  std::vector<std::set<std::string>> acquires(count);
  for (int n = 0; n < count; ++n) {
    for (const FunctionDef* def : nodes[n].defs) {
      for (const LockAcquire& acq : def->locks) acquires[n].insert(acq.key);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (int n = 0; n < count; ++n) {
      for (const int callee : nodes[n].callees) {
        for (const std::string& key : acquires[callee]) {
          if (acquires[n].insert(key).second) changed = true;
        }
      }
    }
  }

  // Lock-order edges: key -> key, with the acquisition site as witness.
  std::map<std::pair<std::string, std::string>, LockWitness> order;
  auto add_order = [&](const std::string& from, const std::string& to,
                       const LockWitness& w) {
    if (from == to) return;
    order.emplace(std::make_pair(from, to), w);
  };

  for (int n = 0; n < count; ++n) {
    for (const FunctionDef* def : nodes[n].defs) {
      // Nested acquisitions: direct self-deadlock + order edges.
      for (const LockAcquire& acq : def->locks) {
        for (std::size_t h = 0; h < acq.held_keys.size(); ++h) {
          if (acq.held_keys[h] == acq.key) {
            reporter.report(def, def->file, acq.line, "lock-discipline",
                            "lock '" + acq.name +
                                "' is already held here and is acquired "
                                "again (self-deadlock)");
            continue;
          }
          add_order(acq.held_keys[h], acq.key,
                    LockWitness{def, def->file, acq.line, acq.held_names[h],
                                acq.name});
        }
      }
      for (const CallSite& call : def->calls) {
        std::vector<std::string> held_keys, held_names;
        for (std::size_t h = 0; h < call.held_keys.size(); ++h) {
          if (call.held_keys[h] == call.released_key) continue;
          held_keys.push_back(call.held_keys[h]);
          held_names.push_back(call.held_names[h]);
        }
        if (held_keys.empty()) continue;
        // Blocking primitive by name while a lock is held.
        if (is_blocking_call(call, config)) {
          reporter.report(def, def->file, call.line, "lock-discipline",
                          "blocking call '" + call_name(call) +
                              "' while holding lock '" + held_list(call) +
                              "' — release the lock before waiting");
          continue;
        }
        const std::vector<int> targets = graph.resolve_call(nodes[n], call);
        // A resolved callee that may (transitively) block.
        for (const int target : targets) {
          if (may_block(target)) {
            reporter.report(def, def->file, call.line, "lock-discipline",
                            "call to '" + nodes[target].display +
                                "' may block (" + block_witness(target) +
                                ") while holding lock '" + held_list(call) +
                                "'");
            break;
          }
        }
        // A callee that re-acquires a lock this thread already holds, and
        // cross-function lock-order edges.
        for (const int target : targets) {
          for (std::size_t h = 0; h < held_keys.size(); ++h) {
            if (acquires[target].count(held_keys[h]) > 0) {
              reporter.report(def, def->file, call.line, "lock-discipline",
                              "call to '" + nodes[target].display +
                                  "' re-acquires lock '" + held_names[h] +
                                  "' already held here (self-deadlock)");
            }
            for (const std::string& taken : acquires[target]) {
              add_order(held_keys[h], taken,
                        LockWitness{def, def->file, call.line, held_names[h],
                                    taken});
            }
          }
        }
      }
    }
  }

  // ABBA: a cycle in the lock-order graph. Transitive closure is cheap at
  // this scale (dozens of lock keys).
  std::map<std::string, std::set<std::string>> after;
  for (const auto& [edge, witness] : order) after[edge.first].insert(edge.second);
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [from, tos] : after) {
      const std::set<std::string> snapshot = tos;
      for (const std::string& mid : snapshot) {
        const auto it = after.find(mid);
        if (it == after.end()) continue;
        for (const std::string& far : it->second) {
          if (tos.insert(far).second) changed = true;
        }
      }
    }
  }
  std::set<std::pair<std::string, std::string>> cycles_reported;
  for (const auto& [edge, witness] : order) {
    const auto back = after.find(edge.second);
    if (back == after.end() || back->second.count(edge.first) == 0) continue;
    const auto canonical = edge.first < edge.second
                               ? std::make_pair(edge.first, edge.second)
                               : std::make_pair(edge.second, edge.first);
    if (!cycles_reported.insert(canonical).second) continue;
    std::string where;
    const auto reverse = order.find(std::make_pair(edge.second, edge.first));
    if (reverse != order.end()) {
      where = " (reverse order at " + reverse->second.file + ":" +
              std::to_string(reverse->second.line) + ")";
    } else {
      where = " (reverse order via intermediate locks)";
    }
    reporter.report(witness.fn, witness.file, witness.line, "lock-discipline",
                    "lock-order cycle: '" + witness.from_name + "' -> '" +
                        witness.to_name + "' here, but '" + witness.to_name +
                        "' is also taken before '" + witness.from_name + "'" +
                        where + " — ABBA deadlock risk");
  }
}

// -------------------------------------------------------------------------
// hot-path-allocation
// -------------------------------------------------------------------------

void check_hot_path_allocation(const CallGraph& graph, const Config& config,
                               Reporter& reporter) {
  std::vector<int> parent;
  const std::vector<int> roots = collect_roots(graph, config.hot_path_roots);
  const std::vector<bool> reachable = graph.reach(roots, &parent);
  std::set<int> allowed;
  for (const std::string& pattern : config.hot_path_allowlist) {
    for (const int n : graph.match_suffix(pattern)) allowed.insert(n);
  }
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (!reachable[n] || allowed.count(static_cast<int>(n)) > 0) continue;
    const std::string path = graph.path_to(static_cast<int>(n), parent);
    for (const FunctionDef* def : graph.nodes()[n].defs) {
      for (const FlatAlloc& alloc : def->allocs) {
        if (alloc.in_throw) continue;  // error exits leave the hot path
        reporter.report(def, def->file, alloc.line, "hot-path-allocation",
                        "constructs " + alloc.what +
                            " on the zero-copy hot path (reachable: " + path +
                            "); stage bytes into the BufferChain instead, "
                            "or extend hot_path_allowlist with a rationale");
      }
      for (const CallSite& call : def->calls) {
        if (call.in_throw) continue;
        if (config.hot_allocation_calls.count(call.path.back()) == 0) continue;
        reporter.report(def, def->file, call.line, "hot-path-allocation",
                        "'" + call_name(call) +
                            "' copies on the zero-copy hot path (reachable: " +
                            path + "); the encode->write path must stay "
                            "segment-based");
      }
    }
  }
}

// -------------------------------------------------------------------------
// guarded-field / thread-affinity shared substrate
// -------------------------------------------------------------------------

/// The enclosing scope of a function: its qualified name minus the last
/// component, e.g. "sbq::qos::LoadMonitor" for LoadMonitor::load.
std::string owner_of(const FunctionDef& def) {
  std::string out;
  for (std::size_t i = 0; i + 1 < def.qualified.size(); ++i) {
    if (!out.empty()) out += "::";
    out += def.qualified[i];
  }
  return out;
}

std::string last_component(const std::string& key) {
  const std::size_t pos = key.rfind("::");
  return pos == std::string::npos ? key : key.substr(pos + 2);
}

/// The annotated-field roster. Access sites resolve against it the way
/// calls resolve against the graph: an implicit (`this`) access binds
/// only to a field of the enclosing class; a receiver-qualified access
/// binds by field name when the name is unique across all annotations,
/// and resolves to nothing when ambiguous (resolve_call's receiver rule).
class FieldIndex {
 public:
  explicit FieldIndex(const std::vector<const FileGraph*>& graphs) {
    for (const FileGraph* g : graphs) {
      for (const FieldDecl& field : g->fields) {
        by_name_[field.name].push_back(&field);
        ++count_;
      }
    }
  }

  const FieldDecl* match(const FunctionDef& def,
                         const FieldAccess& access) const {
    const auto it = by_name_.find(access.name);
    if (it == by_name_.end()) return nullptr;
    if (access.receiver.empty()) {
      const std::string owner = owner_of(def);
      for (const FieldDecl* field : it->second) {
        if (field->class_key == owner) return field;
      }
      return nullptr;
    }
    return it->second.size() == 1 ? it->second.front() : nullptr;
  }

  std::size_t count() const { return count_; }

 private:
  std::map<std::string, std::vector<const FieldDecl*>> by_name_;
  std::size_t count_ = 0;
};

/// Constructors and destructors build/tear down the object before/after
/// it is shared: they touch its fields without the lock by design, and
/// run on whatever thread owns the object's lifetime.
bool is_structor_of(const FunctionDef& def, const FieldDecl& field) {
  if (def.qualified.empty()) return false;
  std::string_view name = def.qualified.back();
  if (!name.empty() && name.front() == '~') name.remove_prefix(1);
  return name == last_component(field.class_key) &&
         owner_of(def) == field.class_key;
}

/// One resolved call edge, kept with its call site so the held-lock set
/// there is available (the plain CallGraph only keeps node indices).
struct CallerEdge {
  int caller = 0;
  const CallSite* call = nullptr;
};

std::vector<std::vector<CallerEdge>> collect_callers(const CallGraph& graph) {
  std::vector<std::vector<CallerEdge>> callers(graph.nodes().size());
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    for (const FunctionDef* def : graph.nodes()[n].defs) {
      for (const CallSite& call : def->calls) {
        for (const int target : graph.resolve_call(graph.nodes()[n], call)) {
          callers[target].push_back(CallerEdge{static_cast<int>(n), &call});
        }
      }
    }
  }
  return callers;
}

/// Lock keys held at a call site, minus a cv-released guard.
std::set<std::string> held_at(const CallSite& call) {
  std::set<std::string> out;
  for (const std::string& key : call.held_keys) {
    if (key != call.released_key) out.insert(key);
  }
  return out;
}

/// entry_held[n]: the lock keys guaranteed held on EVERY path into n —
/// the intersection, over all resolved call sites of n, of (locks held
/// at the site plus locks guaranteed at the caller's own entry).
/// Callerless functions guarantee nothing; so do pure call-graph cycles
/// no outside caller enters (their lingering "unconstrained" state
/// drops to the empty set after the fixpoint).
std::vector<std::set<std::string>> compute_entry_held(
    const CallGraph& graph,
    const std::vector<std::vector<CallerEdge>>& callers) {
  const int count = static_cast<int>(graph.nodes().size());
  std::vector<bool> unconstrained(count);
  std::vector<std::set<std::string>> entry(count);
  for (int n = 0; n < count; ++n) unconstrained[n] = !callers[n].empty();
  for (;;) {
    for (bool changed = true; changed;) {
      changed = false;
      for (int n = 0; n < count; ++n) {
        if (callers[n].empty()) continue;
        bool any = false;
        std::set<std::string> next;
        for (const CallerEdge& edge : callers[n]) {
          if (unconstrained[edge.caller]) continue;
          std::set<std::string> contrib = held_at(*edge.call);
          contrib.insert(entry[edge.caller].begin(), entry[edge.caller].end());
          if (!any) {
            next = std::move(contrib);
            any = true;
          } else {
            std::set<std::string> meet;
            std::set_intersection(next.begin(), next.end(), contrib.begin(),
                                  contrib.end(),
                                  std::inserter(meet, meet.begin()));
            next = std::move(meet);
          }
        }
        if (!any) continue;
        if (unconstrained[n] || next != entry[n]) {
          unconstrained[n] = false;
          entry[n] = std::move(next);
          changed = true;
        }
      }
    }
    // Nodes still unconstrained sit in pure call cycles no grounded caller
    // enters (e.g. mutually-recursive retry/failover layers whose external
    // call sites did not resolve). Ground them to "no guarantees" and run
    // the fixpoint once more so their callees still get the locks held at
    // the concrete call sites — skipping those edges forever would discard
    // that information and misreport every access behind them.
    bool grounded = false;
    for (int n = 0; n < count; ++n) {
      if (unconstrained[n]) {
        unconstrained[n] = false;
        entry[n].clear();
        grounded = true;
      }
    }
    if (!grounded) break;
  }
  return entry;
}

/// Does a held-key set establish `required`? Implicit accesses need the
/// exact class-scoped key; receiver-qualified accesses match by the lock
/// member's NAME (the receiver's class and the lock expression's scope
/// need not agree — `lock(s.completion_mu)` in an Impl method keys the
/// guard under Impl, not under Impl::Shard where the field lives).
bool establishes(const std::set<std::string>& keys,
                 const std::string& required, bool by_name) {
  if (!by_name) return keys.count(required) > 0;
  for (const std::string& key : keys) {
    if (last_component(key) == required) return true;
  }
  return false;
}

/// Witness chain for an unguarded access: walks caller edges upward,
/// always choosing a call site that does NOT establish the required
/// lock, so the printed chain is an actual unlocked path into the
/// function ("caller -> ... -> accessor").
std::string unlocked_chain(const CallGraph& graph,
                           const std::vector<std::vector<CallerEdge>>& callers,
                           const std::vector<std::set<std::string>>& entry,
                           int node, const std::string& required,
                           bool by_name) {
  std::vector<int> chain{node};
  std::set<int> visited{node};
  for (int cur = node, hops = 0; hops < 8; ++hops) {
    int up = -1;
    for (const CallerEdge& edge : callers[cur]) {
      if (visited.count(edge.caller) > 0) continue;
      std::set<std::string> have = held_at(*edge.call);
      have.insert(entry[edge.caller].begin(), entry[edge.caller].end());
      if (establishes(have, required, by_name)) continue;
      up = edge.caller;
      break;
    }
    if (up < 0) break;
    chain.push_back(up);
    visited.insert(up);
    cur = up;
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += graph.nodes()[static_cast<std::size_t>(*it)].display;
  }
  return out;
}

// -------------------------------------------------------------------------
// guarded-field
// -------------------------------------------------------------------------

void check_guarded_field(const CallGraph& graph, const FieldIndex& fields,
                         const std::vector<std::vector<CallerEdge>>& callers,
                         const std::vector<std::set<std::string>>& entry,
                         Reporter& reporter) {
  const auto& nodes = graph.nodes();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const FunctionDef* def : nodes[n].defs) {
      for (const FieldAccess& access : def->accesses) {
        const FieldDecl* field = fields.match(*def, access);
        if (field == nullptr || field->guard.empty()) continue;
        if (is_structor_of(*def, *field)) continue;
        const bool by_name = !access.receiver.empty();
        const std::string& required =
            by_name ? field->guard : field->guard_key;
        std::set<std::string> have(access.held_keys.begin(),
                                   access.held_keys.end());
        have.insert(entry[n].begin(), entry[n].end());
        if (establishes(have, required, by_name)) continue;
        reporter.report(
            def, def->file, access.line, "guarded-field",
            std::string(access.write ? "write to" : "read of") + " field '" +
                access.name + "' without holding '" + field->guard +
                "' (annotated guarded_by at " + field->file + ":" +
                std::to_string(field->line) + "); unlocked path: " +
                unlocked_chain(graph, callers, entry, static_cast<int>(n),
                               required, by_name));
      }
    }
  }
}

// -------------------------------------------------------------------------
// thread-affinity
// -------------------------------------------------------------------------

void check_thread_affinity(const CallGraph& graph, const Config& config,
                           const FieldIndex& fields, Reporter& reporter,
                           std::size_t* live_roots) {
  for (const auto& [root, patterns] : config.affinity_roots) {
    const std::vector<int> entries = collect_roots(graph, patterns);
    if (entries.empty()) continue;
    if (live_roots != nullptr) ++*live_roots;
    std::vector<int> parent;
    const std::vector<bool> reachable = graph.reach(entries, &parent);
    for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
      if (!reachable[n]) continue;
      for (const FunctionDef* def : graph.nodes()[n].defs) {
        if (!def->affinity.empty() && def->affinity != root) {
          reporter.report(
              def, def->file, def->line, "thread-affinity",
              "function '" + def->display + "' is affine to '" +
                  def->affinity + "' but reachable from the '" + root +
                  "' root: " + graph.path_to(static_cast<int>(n), parent));
        }
        for (const FieldAccess& access : def->accesses) {
          const FieldDecl* field = fields.match(*def, access);
          if (field == nullptr || field->affinity.empty()) continue;
          if (field->affinity == root) continue;
          if (is_structor_of(*def, *field)) continue;
          reporter.report(
              def, def->file, access.line, "thread-affinity",
              std::string(access.write ? "write to" : "read of") +
                  " field '" + access.name + "' affine to '" +
                  field->affinity + "' (annotated at " + field->file + ":" +
                  std::to_string(field->line) + ") from the '" + root +
                  "' root: " + graph.path_to(static_cast<int>(n), parent));
        }
      }
    }
  }
}

/// Annotations that never bound to a declaration, and affine annotations
/// naming a root the config does not know, report as bad-pragma — a
/// dangling annotation checks nothing while looking like it does.
void check_annotation_pragmas(const std::vector<ProgramFile>& files,
                              const Config& config, Reporter& reporter) {
  for (const ProgramFile& file : files) {
    if (!file.in_graph) continue;
    std::set<std::size_t> bound(file.graph.bound_annotations.begin(),
                                file.graph.bound_annotations.end());
    for (std::size_t a = 0; a < file.scan.annotations.size(); ++a) {
      const FieldAnnotation& ann = file.scan.annotations[a];
      if (ann.malformed) continue;  // reported per-file as bad-pragma
      const char* form = ann.kind == FieldAnnotation::Kind::kGuardedBy
                             ? "guarded_by"
                             : "affine";
      if (bound.count(a) == 0) {
        reporter.report(nullptr, file.path, ann.line, "bad-pragma",
                        std::string("sbqlint:") + form + "(" + ann.arg +
                            ") does not bind to a field or function "
                            "declaration — put it on the declaration line "
                            "or the line above");
        continue;
      }
      if (ann.kind == FieldAnnotation::Kind::kAffine &&
          config.affinity_roots.count(ann.arg) == 0) {
        reporter.report(nullptr, file.path, ann.line, "bad-pragma",
                        "sbqlint:affine(" + ann.arg +
                            ") names an unknown thread root — known roots "
                            "are the affinity_roots keys in "
                            "default_config()");
      }
    }
  }
}

}  // namespace

void run_graph_rules(const std::vector<ProgramFile>& files,
                     const Config& config, std::vector<Finding>& findings,
                     GraphStats* stats) {
  std::vector<const FileGraph*> graphs;
  for (const ProgramFile& file : files) {
    if (file.in_graph) graphs.push_back(&file.graph);
  }
  CallGraph graph(graphs, config.layering);

  Reporter reporter(files, findings);
  for (const ProgramFile& file : files) {
    if (!file.in_graph) continue;
    for (const EdgePragma& edge : file.scan.edges) {
      if (edge.malformed) continue;  // reported per-file as bad-pragma
      if (!graph.add_edge(edge.caller, edge.callee)) {
        reporter.report(nullptr, file.path, edge.line, "bad-pragma",
                        "sbqlint:edge(" + edge.caller + " -> " + edge.callee +
                            ") does not resolve to known functions on both "
                            "sides — fix the names or delete the pragma");
      }
    }
  }

  check_event_loop_blocking(graph, config, reporter);
  check_lock_discipline(graph, config, reporter);
  check_hot_path_allocation(graph, config, reporter);

  const FieldIndex fields(graphs);
  const std::vector<std::vector<CallerEdge>> callers = collect_callers(graph);
  const std::vector<std::set<std::string>> entry =
      compute_entry_held(graph, callers);
  check_guarded_field(graph, fields, callers, entry, reporter);
  std::size_t live_roots = 0;
  check_thread_affinity(graph, config, fields, reporter, &live_roots);
  check_annotation_pragmas(files, config, reporter);

  if (stats != nullptr) {
    stats->functions = graph.nodes().size();
    stats->call_edges = graph.edge_count();
    stats->annotated_fields = fields.count();
    stats->affinity_roots = live_roots;
  }
}

}  // namespace sbq::lint
