#include "sbqlint/graph_rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace sbq::lint {

namespace {

/// Reports graph findings with both suppression scopes: a line pragma at
/// the finding, or a function-level pragma on the attributed function's
/// definition line (in the function's own file).
class Reporter {
 public:
  Reporter(const std::vector<ProgramFile>& files,
           std::vector<Finding>& findings)
      : findings_(findings) {
    for (const ProgramFile& file : files) scans_[file.path] = &file.scan;
  }

  bool line_allowed(const std::string& file, int line,
                    const std::string& rule) const {
    const auto it = scans_.find(file);
    if (it == scans_.end()) return false;
    const auto at = it->second->allowances.find(line);
    return at != it->second->allowances.end() && at->second.count(rule) > 0;
  }

  void report(const FunctionDef* fn, const std::string& file, int line,
              const std::string& rule, const std::string& message) {
    if (line_allowed(file, line, rule)) return;
    if (fn != nullptr && line_allowed(fn->file, fn->line, rule)) return;
    const auto key = std::make_tuple(file, line, rule);
    if (!reported_.insert(key).second) return;
    findings_.push_back(Finding{file, line, rule, message});
  }

 private:
  std::vector<Finding>& findings_;
  std::map<std::string, const Scan*> scans_;
  std::set<std::tuple<std::string, int, std::string>> reported_;
};

std::string call_name(const CallSite& call) {
  std::string out;
  for (const std::string& part : call.path) {
    if (!out.empty()) out += "::";
    out += part;
  }
  return out;
}

/// A call site that hits a blocking primitive by name, unless its
/// receiver is exempt (the poller's own wait is the one blessed block).
bool is_blocking_call(const CallSite& call, const Config& config) {
  if (config.blocking_calls.count(call.path.back()) == 0) return false;
  if (!call.receiver.empty() &&
      config.blocking_exempt_receivers.count(call.receiver) > 0) {
    return false;
  }
  return true;
}

std::vector<int> collect_roots(const CallGraph& graph,
                               const std::set<std::string>& patterns) {
  std::vector<int> roots;
  for (const std::string& pattern : patterns) {
    for (const int n : graph.match_suffix(pattern)) roots.push_back(n);
  }
  return roots;
}

std::string held_list(const CallSite& call) {
  std::string out;
  for (std::size_t i = 0; i < call.held_keys.size(); ++i) {
    if (call.held_keys[i] == call.released_key) continue;
    if (!out.empty()) out += "', '";
    out += call.held_names[i];
  }
  return out;
}

// -------------------------------------------------------------------------
// event-loop-blocking
// -------------------------------------------------------------------------

void check_event_loop_blocking(const CallGraph& graph, const Config& config,
                               Reporter& reporter) {
  std::vector<int> parent;
  const std::vector<int> roots = collect_roots(graph, config.event_roots);
  const std::vector<bool> reachable = graph.reach(roots, &parent);
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (!reachable[n]) continue;
    for (const FunctionDef* def : graph.nodes()[n].defs) {
      for (const CallSite& call : def->calls) {
        if (!is_blocking_call(call, config)) continue;
        reporter.report(
            def, def->file, call.line, "event-loop-blocking",
            "'" + call_name(call) +
                "' may block the event runtime (reachable: " +
                graph.path_to(static_cast<int>(n), parent) +
                "); nothing on the poller path may block — hand the work "
                "to a worker or use the nonblocking surface");
      }
    }
  }
}

// -------------------------------------------------------------------------
// lock-discipline
// -------------------------------------------------------------------------

struct LockWitness {
  const FunctionDef* fn = nullptr;
  std::string file;
  int line = 0;
  std::string from_name;
  std::string to_name;
};

void check_lock_discipline(const CallGraph& graph, const Config& config,
                           Reporter& reporter) {
  const auto& nodes = graph.nodes();
  const int count = static_cast<int>(nodes.size());

  // may_block: reverse propagation from direct blocking call sites, with a
  // next-hop chain for witness messages.
  std::vector<std::string> direct_prim(count);
  std::vector<int> next_hop(count, -2);  // -2 unset, -1 blocks directly
  std::vector<std::vector<int>> rev(count);
  for (int n = 0; n < count; ++n) {
    for (const int callee : nodes[n].callees) rev[callee].push_back(n);
    for (const FunctionDef* def : nodes[n].defs) {
      for (const CallSite& call : def->calls) {
        if (direct_prim[n].empty() && is_blocking_call(call, config)) {
          // A cv wait that releases its own guard still blocks the thread.
          direct_prim[n] = call.path.back();
        }
      }
    }
  }
  std::vector<int> queue;
  for (int n = 0; n < count; ++n) {
    if (!direct_prim[n].empty()) {
      next_hop[n] = -1;
      queue.push_back(n);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int n = queue[head];
    for (const int caller : rev[n]) {
      if (next_hop[caller] != -2) continue;
      next_hop[caller] = n;
      queue.push_back(caller);
    }
  }
  auto may_block = [&](int n) { return next_hop[n] != -2; };
  auto block_witness = [&](int n) {
    std::string out = nodes[n].display;
    int hops = 0;
    while (next_hop[n] >= 0 && hops++ < count) {
      n = next_hop[n];
      out += " -> " + nodes[n].display;
    }
    return out + " -> " + direct_prim[n];
  };

  // acquires_transitive: lock keys a node (or anything it calls) takes.
  std::vector<std::set<std::string>> acquires(count);
  for (int n = 0; n < count; ++n) {
    for (const FunctionDef* def : nodes[n].defs) {
      for (const LockAcquire& acq : def->locks) acquires[n].insert(acq.key);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (int n = 0; n < count; ++n) {
      for (const int callee : nodes[n].callees) {
        for (const std::string& key : acquires[callee]) {
          if (acquires[n].insert(key).second) changed = true;
        }
      }
    }
  }

  // Lock-order edges: key -> key, with the acquisition site as witness.
  std::map<std::pair<std::string, std::string>, LockWitness> order;
  auto add_order = [&](const std::string& from, const std::string& to,
                       const LockWitness& w) {
    if (from == to) return;
    order.emplace(std::make_pair(from, to), w);
  };

  for (int n = 0; n < count; ++n) {
    for (const FunctionDef* def : nodes[n].defs) {
      // Nested acquisitions: direct self-deadlock + order edges.
      for (const LockAcquire& acq : def->locks) {
        for (std::size_t h = 0; h < acq.held_keys.size(); ++h) {
          if (acq.held_keys[h] == acq.key) {
            reporter.report(def, def->file, acq.line, "lock-discipline",
                            "lock '" + acq.name +
                                "' is already held here and is acquired "
                                "again (self-deadlock)");
            continue;
          }
          add_order(acq.held_keys[h], acq.key,
                    LockWitness{def, def->file, acq.line, acq.held_names[h],
                                acq.name});
        }
      }
      for (const CallSite& call : def->calls) {
        std::vector<std::string> held_keys, held_names;
        for (std::size_t h = 0; h < call.held_keys.size(); ++h) {
          if (call.held_keys[h] == call.released_key) continue;
          held_keys.push_back(call.held_keys[h]);
          held_names.push_back(call.held_names[h]);
        }
        if (held_keys.empty()) continue;
        // Blocking primitive by name while a lock is held.
        if (is_blocking_call(call, config)) {
          reporter.report(def, def->file, call.line, "lock-discipline",
                          "blocking call '" + call_name(call) +
                              "' while holding lock '" + held_list(call) +
                              "' — release the lock before waiting");
          continue;
        }
        const std::vector<int> targets = graph.resolve_call(nodes[n], call);
        // A resolved callee that may (transitively) block.
        for (const int target : targets) {
          if (may_block(target)) {
            reporter.report(def, def->file, call.line, "lock-discipline",
                            "call to '" + nodes[target].display +
                                "' may block (" + block_witness(target) +
                                ") while holding lock '" + held_list(call) +
                                "'");
            break;
          }
        }
        // A callee that re-acquires a lock this thread already holds, and
        // cross-function lock-order edges.
        for (const int target : targets) {
          for (std::size_t h = 0; h < held_keys.size(); ++h) {
            if (acquires[target].count(held_keys[h]) > 0) {
              reporter.report(def, def->file, call.line, "lock-discipline",
                              "call to '" + nodes[target].display +
                                  "' re-acquires lock '" + held_names[h] +
                                  "' already held here (self-deadlock)");
            }
            for (const std::string& taken : acquires[target]) {
              add_order(held_keys[h], taken,
                        LockWitness{def, def->file, call.line, held_names[h],
                                    taken});
            }
          }
        }
      }
    }
  }

  // ABBA: a cycle in the lock-order graph. Transitive closure is cheap at
  // this scale (dozens of lock keys).
  std::map<std::string, std::set<std::string>> after;
  for (const auto& [edge, witness] : order) after[edge.first].insert(edge.second);
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [from, tos] : after) {
      const std::set<std::string> snapshot = tos;
      for (const std::string& mid : snapshot) {
        const auto it = after.find(mid);
        if (it == after.end()) continue;
        for (const std::string& far : it->second) {
          if (tos.insert(far).second) changed = true;
        }
      }
    }
  }
  std::set<std::pair<std::string, std::string>> cycles_reported;
  for (const auto& [edge, witness] : order) {
    const auto back = after.find(edge.second);
    if (back == after.end() || back->second.count(edge.first) == 0) continue;
    const auto canonical = edge.first < edge.second
                               ? std::make_pair(edge.first, edge.second)
                               : std::make_pair(edge.second, edge.first);
    if (!cycles_reported.insert(canonical).second) continue;
    std::string where;
    const auto reverse = order.find(std::make_pair(edge.second, edge.first));
    if (reverse != order.end()) {
      where = " (reverse order at " + reverse->second.file + ":" +
              std::to_string(reverse->second.line) + ")";
    } else {
      where = " (reverse order via intermediate locks)";
    }
    reporter.report(witness.fn, witness.file, witness.line, "lock-discipline",
                    "lock-order cycle: '" + witness.from_name + "' -> '" +
                        witness.to_name + "' here, but '" + witness.to_name +
                        "' is also taken before '" + witness.from_name + "'" +
                        where + " — ABBA deadlock risk");
  }
}

// -------------------------------------------------------------------------
// hot-path-allocation
// -------------------------------------------------------------------------

void check_hot_path_allocation(const CallGraph& graph, const Config& config,
                               Reporter& reporter) {
  std::vector<int> parent;
  const std::vector<int> roots = collect_roots(graph, config.hot_path_roots);
  const std::vector<bool> reachable = graph.reach(roots, &parent);
  std::set<int> allowed;
  for (const std::string& pattern : config.hot_path_allowlist) {
    for (const int n : graph.match_suffix(pattern)) allowed.insert(n);
  }
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (!reachable[n] || allowed.count(static_cast<int>(n)) > 0) continue;
    const std::string path = graph.path_to(static_cast<int>(n), parent);
    for (const FunctionDef* def : graph.nodes()[n].defs) {
      for (const FlatAlloc& alloc : def->allocs) {
        if (alloc.in_throw) continue;  // error exits leave the hot path
        reporter.report(def, def->file, alloc.line, "hot-path-allocation",
                        "constructs " + alloc.what +
                            " on the zero-copy hot path (reachable: " + path +
                            "); stage bytes into the BufferChain instead, "
                            "or extend hot_path_allowlist with a rationale");
      }
      for (const CallSite& call : def->calls) {
        if (call.in_throw) continue;
        if (config.hot_allocation_calls.count(call.path.back()) == 0) continue;
        reporter.report(def, def->file, call.line, "hot-path-allocation",
                        "'" + call_name(call) +
                            "' copies on the zero-copy hot path (reachable: " +
                            path + "); the encode->write path must stay "
                            "segment-based");
      }
    }
  }
}

}  // namespace

void run_graph_rules(const std::vector<ProgramFile>& files,
                     const Config& config, std::vector<Finding>& findings,
                     GraphStats* stats) {
  std::vector<const FileGraph*> graphs;
  for (const ProgramFile& file : files) {
    if (file.in_graph) graphs.push_back(&file.graph);
  }
  CallGraph graph(graphs, config.layering);

  Reporter reporter(files, findings);
  for (const ProgramFile& file : files) {
    if (!file.in_graph) continue;
    for (const EdgePragma& edge : file.scan.edges) {
      if (edge.malformed) continue;  // reported per-file as bad-pragma
      if (!graph.add_edge(edge.caller, edge.callee)) {
        reporter.report(nullptr, file.path, edge.line, "bad-pragma",
                        "sbqlint:edge(" + edge.caller + " -> " + edge.callee +
                            ") does not resolve to known functions on both "
                            "sides — fix the names or delete the pragma");
      }
    }
  }

  check_event_loop_blocking(graph, config, reporter);
  check_lock_discipline(graph, config, reporter);
  check_hot_path_allocation(graph, config, reporter);

  if (stats != nullptr) {
    stats->functions = graph.nodes().size();
    stats->call_edges = graph.edge_count();
  }
}

}  // namespace sbq::lint
