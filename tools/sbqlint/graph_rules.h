// sbqlint graph rules — pass 2 of the two-pass analyzer (internal).
//
// Consumes the per-file FileGraphs, folds them into one CallGraph, and
// runs the reachability rules: event-loop-blocking, lock-discipline
// (blocking-under-lock, self-deadlock, ABBA ordering),
// hot-path-allocation, guarded-field (annotated fields only accessed
// under their mutex, directly or via the caller's held-lock set
// propagated along call edges), and thread-affinity (affine functions
// and fields only reachable from their own thread root). Dangling
// `sbqlint:edge` pragmas and annotations that bind to nothing surface
// here as bad-pragma findings (malformed ones are caught per-file).
#pragma once

#include <vector>

#include "sbqlint/callgraph.h"
#include "sbqlint/lint.h"

namespace sbq::lint {

/// One analyzed file: the scan every rule shares, plus the pass-1 graph
/// for files that participate in the cross-TU call graph (src/, tools/).
struct ProgramFile {
  std::string path;
  Scan scan;
  FileGraph graph;
  bool in_graph = false;
};

struct GraphStats {
  std::size_t functions = 0;
  std::size_t call_edges = 0;
  std::size_t annotated_fields = 0;  // guarded_by/affine field declarations
  std::size_t affinity_roots = 0;    // configured roots with >= 1 entry node
};

void run_graph_rules(const std::vector<ProgramFile>& files,
                     const Config& config, std::vector<Finding>& findings,
                     GraphStats* stats = nullptr);

}  // namespace sbq::lint
