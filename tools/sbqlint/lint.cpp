#include "sbqlint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace sbq::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Comments, string/char literals (including raw strings and
// encoding prefixes), and preprocessor lines never produce tokens, so a
// banned identifier inside a string or comment can never fire a rule.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kLiteral };
  Kind kind;
  std::string text;
  int line;
};

struct IncludeDirective {
  std::string path;
  bool angled;
  int line;
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rules suppressed on that line (a pragma covers its own line
  /// and the next, so it can trail the offending code or sit above it).
  std::map<int, std::set<std::string>> allowances;
};

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// Registers every `sbqlint:allow(rule[, rule...])` pragma in a comment.
void scan_pragmas(const std::string& comment, int line, Scan& scan) {
  static const std::string kMarker = "sbqlint:allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    pos += kMarker.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    std::stringstream list(comment.substr(pos, close - pos));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const std::size_t first = rule.find_first_not_of(" \t");
      const std::size_t last = rule.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      const std::string name = rule.substr(first, last - first + 1);
      scan.allowances[line].insert(name);
      scan.allowances[line + 1].insert(name);
    }
    pos = close;
  }
}

class Lexer {
 public:
  Lexer(const std::string& src, Scan& out) : src_(src), out_(out) {}

  void run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
      } else if (is_ident_start(c)) {
        identifier();
      } else {
        punct();
      }
    }
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start = line_;
    std::size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) end = src_.size();
    scan_pragmas(src_.substr(pos_, end - pos_), start, *this->out());
    pos_ = end;
  }

  void block_comment() {
    const int start = line_;
    pos_ += 2;
    const std::size_t end = src_.find("*/", pos_);
    const std::size_t stop = end == std::string::npos ? src_.size() : end;
    scan_pragmas(src_.substr(pos_, stop - pos_), start, *this->out());
    for (std::size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? src_.size() : end + 2;
  }

  /// Consumes a `"..."` literal with escapes; pos_ is at the opening quote.
  void string_literal() {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // unterminated; keep line counts honest
      ++pos_;
      if (c == '"') break;
    }
    emit(Token::Kind::kLiteral, "\"\"", start);
  }

  void char_literal() {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;
      ++pos_;
      if (c == '\'') break;
    }
    emit(Token::Kind::kLiteral, "''", start);
  }

  /// Consumes `R"delim( ... )delim"`; pos_ is at the opening quote.
  void raw_string_literal() {
    const int start = line_;
    ++pos_;  // past '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    ++pos_;  // past '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, pos_);
    const std::size_t stop = end == std::string::npos ? src_.size() : end;
    for (std::size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? src_.size() : end + closer.size();
    emit(Token::Kind::kLiteral, "\"\"", start);
  }

  void number() {
    const int start = line_;
    const std::size_t begin = pos_;
    // pp-number: digits, idents, quotes as separators, exponent signs.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && is_ident_char(peek(1))) {
        pos_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    emit(Token::Kind::kNumber, src_.substr(begin, pos_ - begin), start);
  }

  void identifier() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text = src_.substr(begin, pos_ - begin);
    // Encoding prefixes glue onto the following literal.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
          text == "u8R") {
        raw_string_literal();
        return;
      }
      if (text == "L" || text == "u" || text == "U" || text == "u8") {
        string_literal();
        return;
      }
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      char_literal();
      return;
    }
    emit(Token::Kind::kIdent, std::move(text), start);
  }

  void punct() {
    const int start = line_;
    if (src_[pos_] == ':' && peek(1) == ':') {
      emit(Token::Kind::kPunct, "::", start);
      pos_ += 2;
      return;
    }
    if (src_[pos_] == '.' && peek(1) == '.' && peek(2) == '.') {
      emit(Token::Kind::kPunct, "...", start);
      pos_ += 3;
      return;
    }
    emit(Token::Kind::kPunct, std::string(1, src_[pos_]), start);
    ++pos_;
  }

  /// Consumes a whole preprocessor directive (with backslash continuations
  /// and trailing comments), recording #include targets. Directive bodies
  /// produce no tokens — a #define is policy for clang-tidy, not for us.
  void preprocessor_line() {
    const int start = line_;
    std::string directive;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!directive.empty() && directive.back() == '\\') {
          directive.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;  // newline itself handled by the main loop
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      directive += c;
      ++pos_;
    }
    parse_include(directive, start);
    at_line_start_ = false;
  }

  void parse_include(const std::string& directive, int line) {
    std::size_t i = 1;  // past '#'
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
    static const std::string kWord = "include";
    if (directive.compare(i, kWord.size(), kWord) != 0) return;
    i += kWord.size();
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
    if (i >= directive.size()) return;
    const char open = directive[i];
    const char close = open == '<' ? '>' : '"';
    if (open != '<' && open != '"') return;
    const std::size_t end = directive.find(close, i + 1);
    if (end == std::string::npos) return;
    out_.includes.push_back(IncludeDirective{
        directive.substr(i + 1, end - i - 1), open == '<', line});
  }

  Scan* out() { return &out_; }

  const std::string& src_;
  Scan& out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

// ---------------------------------------------------------------------------
// Path helpers and rule scopes.
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// First path component: "src/pbio/x.h" -> "src"; "" if none.
std::string first_component(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

/// Subsystem of a src/ file ("apps/image/..." folds to "apps"); "" outside.
std::string subsystem_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return {};
  const std::string below = rel_path.substr(4);
  return first_component(below);
}

bool suppressed(const Scan& scan, int line, const std::string& rule) {
  const auto it = scan.allowances.find(line);
  return it != scan.allowances.end() && it->second.count(rule) > 0;
}

struct RuleContext {
  const std::string& path;
  const Scan& scan;
  const Config& config;
  std::vector<Finding>& findings;

  void report(int line, const std::string& rule, const std::string& message) const {
    if (!suppressed(scan, line, rule)) {
      findings.push_back(Finding{path, line, rule, message});
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: layering — #include edges under src/ must follow the subsystem DAG.
// ---------------------------------------------------------------------------

void check_layering(const RuleContext& ctx) {
  const std::string sub = subsystem_of(ctx.path);
  if (sub.empty()) return;  // tools/tests/bench compose freely
  const auto allowed = ctx.config.layering.find(sub);
  if (allowed == ctx.config.layering.end()) {
    ctx.report(1, "layering",
               "unknown subsystem 'src/" + sub +
                   "' — add it to the DAG in sbqlint's default_config()");
    return;
  }
  for (const IncludeDirective& inc : ctx.scan.includes) {
    if (inc.angled) continue;  // system headers
    const std::string target = first_component(inc.path);
    if (ctx.config.layering.count(target) == 0) continue;  // not a subsystem
    if (target == sub || allowed->second.count(target) > 0) continue;
    std::string allowed_list;
    for (const std::string& t : allowed->second) {
      allowed_list += allowed_list.empty() ? t : ", " + t;
    }
    ctx.report(inc.line, "layering",
               "src/" + sub + " may not include \"" + inc.path +
                   "\" (allowed layers: " + sub +
                   (allowed_list.empty() ? "" : ", " + allowed_list) + ")");
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-throw — every throw constructs an sbq::Error subclass.
// ---------------------------------------------------------------------------

void check_no_raw_throw(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "throw") continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == ";") continue;  // rethrow
    // Collect the qualified id that follows, if any.
    std::vector<std::string> components;
    if (j < toks.size() && toks[j].text == "::") ++j;  // ::sbq::Error(...)
    while (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      components.push_back(toks[j].text);
      ++j;
      if (j < toks.size() && toks[j].text == "::") {
        ++j;
      } else {
        break;
      }
    }
    bool ok = false;
    if (!components.empty() && j < toks.size() &&
        (toks[j].text == "(" || toks[j].text == "{")) {
      ok = ctx.config.error_types.count(components.back()) > 0;
      for (std::size_t q = 0; ok && q + 1 < components.size(); ++q) {
        ok = ctx.config.error_namespaces.count(components[q]) > 0;
      }
    }
    if (!ok) {
      std::string expr;
      std::string prev;
      for (std::size_t k = i + 1; k < toks.size() && k < i + 6; ++k) {
        const std::string& text = toks[k].text;
        if (text == ";" || text == "(" || text == "{") break;
        if (!expr.empty() && text != "::" && prev != "::") expr += " ";
        expr += text;
        prev = text;
      }
      ctx.report(toks[i].line, "no-raw-throw",
                 "throw must construct an sbq::Error subclass, got 'throw " +
                     expr + "' (keeps the fuzz contract machine-checkable)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-swallow — catch (...) must rethrow or convert.
// ---------------------------------------------------------------------------

void check_no_swallow(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch") continue;
    if (toks[i + 1].text != "(") continue;
    // Collect the exception-declaration between the parens.
    std::size_t j = i + 2;
    int depth = 1;
    std::vector<std::size_t> params;
    for (; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      params.push_back(j);
    }
    if (params.size() != 1 || toks[params[0]].text != "...") continue;
    // Scan the handler block for any throw (rethrow or conversion).
    std::size_t k = j + 1;
    if (k >= toks.size() || toks[k].text != "{") continue;
    int braces = 1;
    bool throws = false;
    for (++k; k < toks.size() && braces > 0; ++k) {
      if (toks[k].text == "{") ++braces;
      else if (toks[k].text == "}") --braces;
      else if (toks[k].kind == Token::Kind::kIdent && toks[k].text == "throw")
        throws = true;
    }
    if (!throws) {
      ctx.report(toks[i].line, "no-swallow",
                 "catch (...) must rethrow or convert the exception "
                 "(or carry sbqlint:allow(no-swallow) with a justification)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: cast-confinement — reinterpret_cast / memcpy only in allowlisted
// codec/endian/syscall files.
// ---------------------------------------------------------------------------

void check_cast_confinement(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  if (ctx.config.cast_allowlist.count(ctx.path) > 0) return;
  for (const Token& tok : ctx.scan.tokens) {
    if (tok.kind != Token::Kind::kIdent) continue;
    if (tok.text == "reinterpret_cast" || tok.text == "memcpy") {
      ctx.report(tok.line, "cast-confinement",
                 tok.text +
                     " is confined to the codec/endian/syscall allowlist "
                     "(use sbq::as_bytes/as_chars/to_string, or extend the "
                     "allowlist in sbqlint's default_config())");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: clock-discipline — real clocks only in src/common/clock.h.
// ---------------------------------------------------------------------------

void check_clock_discipline(const RuleContext& ctx) {
  if (ctx.config.clock_allowlist.count(ctx.path) > 0) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool banned =
        ctx.config.clock_banned.count(toks[i].text) > 0 ||
        (ctx.config.clock_banned_calls.count(toks[i].text) > 0 &&
         i + 1 < toks.size() && toks[i + 1].text == "(");
    if (banned) {
      ctx.report(toks[i].line, "clock-discipline",
                 "'" + toks[i].text +
                     "' bypasses the clock discipline: real time comes from "
                     "common/clock.h, simulated time from net::TimeSource");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: sleep-discipline — product code never blocks the thread directly.
// Delays (retry backoff, probe pacing, hedge boundaries) route through
// core::wait_on, which advances a SimClock in place, so every schedule is
// reproducible under simulation. Scoped to src/ and tools/: tests and bench
// drive real servers and legitimately sleep.
// ---------------------------------------------------------------------------

void check_sleep_discipline(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) {
    return;
  }
  if (ctx.config.sleep_allowlist.count(ctx.path) > 0) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (ctx.config.sleep_banned_calls.count(toks[i].text) > 0 &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      ctx.report(toks[i].line, "sleep-discipline",
                 "'" + toks[i].text +
                     "' blocks the thread outside the delay allowlist: pace "
                     "waits through core::wait_on (virtual time under "
                     "simulation), or extend sleep_allowlist in sbqlint's "
                     "default_config()");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

std::vector<RuleInfo> rules() {
  return {
      {"layering", "#include edges must follow the subsystem DAG "
                   "(common -> xml/compress/pbio -> net/http -> "
                   "soap/qos/wsdl -> core -> apps)"},
      {"no-raw-throw", "every throw in src/ and tools/ must construct an "
                       "sbq::Error subclass (malformed input => sbq::Error)"},
      {"no-swallow", "catch (...) must rethrow or convert; silent swallows "
                     "need an explicit sbqlint:allow pragma"},
      {"cast-confinement", "reinterpret_cast / memcpy confined to the "
                           "codec/endian/syscall file allowlist"},
      {"clock-discipline", "no real-clock primitives outside "
                           "src/common/clock.h (simulation determinism)"},
      {"sleep-discipline", "no direct thread sleeps in src/ or tools/ "
                           "outside the delay-primitive allowlist (pace "
                           "waits through core::wait_on)"},
  };
}

Config default_config() {
  Config config;
  // The DESIGN.md DAG: common is the substrate; xml/compress/pbio/net are
  // leaf codecs and transports over it; http rides net; soap/qos/wsdl are
  // description layers over the codecs; core composes everything; apps sit
  // on top of core. rpc is the standalone Sun RPC baseline.
  config.layering = {
      {"common", {}},
      {"xml", {"common"}},
      {"compress", {"common"}},
      {"pbio", {"common"}},
      {"net", {"common"}},
      {"http", {"common", "net"}},
      {"rpc", {"common", "net"}},
      {"soap", {"common", "xml", "pbio"}},
      {"qos", {"common", "pbio"}},
      {"wsdl", {"common", "xml", "pbio", "qos"}},
      {"core",
       {"common", "xml", "compress", "pbio", "net", "http", "soap", "qos",
        "wsdl"}},
      {"apps", {"common", "xml", "compress", "pbio", "qos", "core"}},
  };
  config.error_types = {
      "Error",        "ParseError",    "CodecError", "TransportError",
      "TimeoutError", "OverloadError", "RpcError",   "QosError",
      "UsageError",   "XmlError",
  };
  config.error_namespaces = {
      "sbq",  "common", "xml",  "compress", "pbio", "net",
      "http", "rpc",    "soap", "wsdl",     "qos",  "core",
  };
  config.cast_allowlist = {
      "src/common/bytes.h",        // the canonical char<->byte bridge
      "src/common/arena.h",        // allocator block copies
      "src/common/buffer_chain.cpp",  // owned-storage views + coalesce copy
      "src/net/tcp.cpp",           // sockaddr casts for the BSD socket API
      "src/net/poller.cpp",        // epoll_data / eventfd counter plumbing
      "src/pbio/detail.cpp",       // wire codec: scalar (de)serialization
      "src/pbio/encode.cpp",       // wire codec: native-layout encode
      "src/pbio/decode.cpp",       // wire codec: receiver-makes-right decode
      "src/pbio/plan.cpp",         // wire codec: compiled decode plans
  };
  config.clock_allowlist = {"src/common/clock.h"};
  config.clock_banned = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "localtime_r",   "gmtime",
      "gmtime_r",     "mktime",        "ctime",
      "asctime",      "strftime",      "ftime",
  };
  config.clock_banned_calls = {"time", "clock"};
  config.sleep_allowlist = {
      "src/core/client.cpp",      // core::wait_on, the blessed delay primitive
      "src/net/fault.cpp",        // kStall on a live stream really stalls
      "src/http/event_front.cpp", // poll fallback when no poller fd is ready
  };
  config.sleep_banned_calls = {"sleep_for", "sleep_until", "sleep", "usleep",
                               "nanosleep"};
  return config;
}

std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& content,
                                    const Config& config) {
  Scan scan;
  Lexer(content, scan).run();
  std::vector<Finding> findings;
  const RuleContext ctx{rel_path, scan, config, findings};
  check_layering(ctx);
  check_no_raw_throw(ctx);
  check_no_swallow(ctx);
  check_cast_confinement(ctx);
  check_clock_discipline(ctx);
  check_sleep_discipline(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> analyze_tree(const std::string& root,
                                  const Config& config) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  std::vector<std::string> files;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path top = base / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") continue;
      files.push_back(fs::relative(entry.path(), base).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    std::ifstream in(base / rel, std::ios::binary);
    if (!in) throw sbq::Error("sbqlint: cannot read " + (base / rel).string());
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<Finding> file_findings = analyze_source(rel, ss.str(), config);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

}  // namespace sbq::lint
