#include "sbqlint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "sbqlint/cache.h"
#include "sbqlint/graph_rules.h"
#include "sbqlint/tokenizer.h"

namespace sbq::lint {

namespace {

// ---------------------------------------------------------------------------
// Path helpers and rule scopes.
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// First path component: "src/pbio/x.h" -> "src"; "" if none.
std::string first_component(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

/// Subsystem of a src/ file ("apps/image/..." folds to "apps"); "" outside.
std::string subsystem_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return {};
  const std::string below = rel_path.substr(4);
  return first_component(below);
}

bool suppressed(const Scan& scan, int line, const std::string& rule) {
  const auto it = scan.allowances.find(line);
  return it != scan.allowances.end() && it->second.count(rule) > 0;
}

struct RuleContext {
  const std::string& path;
  const Scan& scan;
  const Config& config;
  std::vector<Finding>& findings;

  void report(int line, const std::string& rule, const std::string& message) const {
    if (!suppressed(scan, line, rule)) {
      findings.push_back(Finding{path, line, rule, message});
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: layering — #include edges under src/ must follow the subsystem DAG.
// ---------------------------------------------------------------------------

void check_layering(const RuleContext& ctx) {
  const std::string sub = subsystem_of(ctx.path);
  if (sub.empty()) return;  // tools/tests/bench compose freely
  const auto allowed = ctx.config.layering.find(sub);
  if (allowed == ctx.config.layering.end()) {
    ctx.report(1, "layering",
               "unknown subsystem 'src/" + sub +
                   "' — add it to the DAG in sbqlint's default_config()");
    return;
  }
  for (const IncludeDirective& inc : ctx.scan.includes) {
    if (inc.angled) continue;  // system headers
    const std::string target = first_component(inc.path);
    if (ctx.config.layering.count(target) == 0) continue;  // not a subsystem
    if (target == sub || allowed->second.count(target) > 0) continue;
    std::string allowed_list;
    for (const std::string& t : allowed->second) {
      allowed_list += allowed_list.empty() ? t : ", " + t;
    }
    ctx.report(inc.line, "layering",
               "src/" + sub + " may not include \"" + inc.path +
                   "\" (allowed layers: " + sub +
                   (allowed_list.empty() ? "" : ", " + allowed_list) + ")");
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-throw — every throw constructs an sbq::Error subclass.
// ---------------------------------------------------------------------------

void check_no_raw_throw(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "throw") continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == ";") continue;  // rethrow
    // Collect the qualified id that follows, if any.
    std::vector<std::string> components;
    if (j < toks.size() && toks[j].text == "::") ++j;  // ::sbq::Error(...)
    while (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      components.push_back(toks[j].text);
      ++j;
      if (j < toks.size() && toks[j].text == "::") {
        ++j;
      } else {
        break;
      }
    }
    bool ok = false;
    if (!components.empty() && j < toks.size() &&
        (toks[j].text == "(" || toks[j].text == "{")) {
      ok = ctx.config.error_types.count(components.back()) > 0;
      for (std::size_t q = 0; ok && q + 1 < components.size(); ++q) {
        ok = ctx.config.error_namespaces.count(components[q]) > 0;
      }
    }
    if (!ok) {
      std::string expr;
      std::string prev;
      for (std::size_t k = i + 1; k < toks.size() && k < i + 6; ++k) {
        const std::string& text = toks[k].text;
        if (text == ";" || text == "(" || text == "{") break;
        if (!expr.empty() && text != "::" && prev != "::") expr += " ";
        expr += text;
        prev = text;
      }
      ctx.report(toks[i].line, "no-raw-throw",
                 "throw must construct an sbq::Error subclass, got 'throw " +
                     expr + "' (keeps the fuzz contract machine-checkable)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-swallow — catch (...) must rethrow or convert.
// ---------------------------------------------------------------------------

void check_no_swallow(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "catch") continue;
    if (toks[i + 1].text != "(") continue;
    // Collect the exception-declaration between the parens.
    std::size_t j = i + 2;
    int depth = 1;
    std::vector<std::size_t> params;
    for (; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      params.push_back(j);
    }
    if (params.size() != 1 || toks[params[0]].text != "...") continue;
    // Scan the handler block for any throw (rethrow or conversion).
    std::size_t k = j + 1;
    if (k >= toks.size() || toks[k].text != "{") continue;
    int braces = 1;
    bool throws = false;
    for (++k; k < toks.size() && braces > 0; ++k) {
      if (toks[k].text == "{") ++braces;
      else if (toks[k].text == "}") --braces;
      else if (toks[k].kind == Token::Kind::kIdent && toks[k].text == "throw")
        throws = true;
    }
    if (!throws) {
      ctx.report(toks[i].line, "no-swallow",
                 "catch (...) must rethrow or convert the exception "
                 "(or carry sbqlint:allow(no-swallow) with a justification)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: cast-confinement — reinterpret_cast / memcpy only in allowlisted
// codec/endian/syscall files.
// ---------------------------------------------------------------------------

void check_cast_confinement(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) return;
  if (ctx.config.cast_allowlist.count(ctx.path) > 0) return;
  for (const Token& tok : ctx.scan.tokens) {
    if (tok.kind != Token::Kind::kIdent) continue;
    if (tok.text == "reinterpret_cast" || tok.text == "memcpy") {
      ctx.report(tok.line, "cast-confinement",
                 tok.text +
                     " is confined to the codec/endian/syscall allowlist "
                     "(use sbq::as_bytes/as_chars/to_string, or extend the "
                     "allowlist in sbqlint's default_config())");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: clock-discipline — real clocks only in src/common/clock.h.
// ---------------------------------------------------------------------------

void check_clock_discipline(const RuleContext& ctx) {
  if (ctx.config.clock_allowlist.count(ctx.path) > 0) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool banned =
        ctx.config.clock_banned.count(toks[i].text) > 0 ||
        (ctx.config.clock_banned_calls.count(toks[i].text) > 0 &&
         i + 1 < toks.size() && toks[i + 1].text == "(");
    if (banned) {
      ctx.report(toks[i].line, "clock-discipline",
                 "'" + toks[i].text +
                     "' bypasses the clock discipline: real time comes from "
                     "common/clock.h, simulated time from net::TimeSource");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: sleep-discipline — product code never blocks the thread directly.
// Delays (retry backoff, probe pacing, hedge boundaries) route through
// core::wait_on, which advances a SimClock in place, so every schedule is
// reproducible under simulation. Scoped to src/ and tools/: tests and bench
// drive real servers and legitimately sleep.
// ---------------------------------------------------------------------------

void check_sleep_discipline(const RuleContext& ctx) {
  if (!starts_with(ctx.path, "src/") && !starts_with(ctx.path, "tools/")) {
    return;
  }
  if (ctx.config.sleep_allowlist.count(ctx.path) > 0) return;
  const std::vector<Token>& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (ctx.config.sleep_banned_calls.count(toks[i].text) > 0 &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      ctx.report(toks[i].line, "sleep-discipline",
                 "'" + toks[i].text +
                     "' blocks the thread outside the delay allowlist: pace "
                     "waits through core::wait_on (virtual time under "
                     "simulation), or extend sleep_allowlist in sbqlint's "
                     "default_config()");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: bad-pragma — pragmas must name rules the analyzer knows. A typo'd
// pragma otherwise suppresses nothing while looking like it does.
// ---------------------------------------------------------------------------

const std::set<std::string>& known_rule_names() {
  static const std::set<std::string> kNames = [] {
    std::set<std::string> names;
    for (const RuleInfo& rule : rules()) names.insert(rule.name);
    return names;
  }();
  return kNames;
}

void check_bad_pragma(const RuleContext& ctx) {
  for (const AllowPragma& pragma : ctx.scan.pragmas) {
    for (const std::string& rule : pragma.rules) {
      if (known_rule_names().count(rule) > 0) continue;
      ctx.report(pragma.line, "bad-pragma",
                 "sbqlint:allow names unknown rule '" + rule +
                     "' — it suppresses nothing (see --list-rules)");
    }
  }
  for (const EdgePragma& edge : ctx.scan.edges) {
    if (edge.malformed) {
      ctx.report(edge.line, "bad-pragma",
                 "malformed sbqlint:edge pragma — expected "
                 "sbqlint:edge(caller -> callee)");
    }
  }
  for (const FieldAnnotation& ann : ctx.scan.annotations) {
    if (ann.malformed) {
      ctx.report(ann.line, "bad-pragma",
                 std::string("malformed sbqlint:") +
                     (ann.kind == FieldAnnotation::Kind::kGuardedBy
                          ? "guarded_by"
                          : "affine") +
                     " annotation — expected a single unqualified "
                     "member/root name");
    }
  }
}

void run_line_rules(const std::string& path, const Scan& scan,
                    const Config& config, std::vector<Finding>& findings) {
  const RuleContext ctx{path, scan, config, findings};
  check_layering(ctx);
  check_no_raw_throw(ctx);
  check_no_swallow(ctx);
  check_cast_confinement(ctx);
  check_clock_discipline(ctx);
  check_sleep_discipline(ctx);
  check_bad_pragma(ctx);
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
}

/// Files under src/ and tools/ participate in the cross-TU call graph;
/// tests and bench drive servers from the outside and may block freely.
bool in_call_graph(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

std::vector<RuleInfo> rules() {
  return {
      {"layering", "#include edges must follow the subsystem DAG "
                   "(common -> xml/compress/pbio -> net/http -> "
                   "soap/qos/wsdl -> core -> apps)"},
      {"no-raw-throw", "every throw in src/ and tools/ must construct an "
                       "sbq::Error subclass (malformed input => sbq::Error)"},
      {"no-swallow", "catch (...) must rethrow or convert; silent swallows "
                     "need an explicit sbqlint:allow pragma"},
      {"cast-confinement", "reinterpret_cast / memcpy confined to the "
                           "codec/endian/syscall file allowlist"},
      {"clock-discipline", "no real-clock primitives outside "
                           "src/common/clock.h (simulation determinism)"},
      {"sleep-discipline", "no direct thread sleeps in src/ or tools/ "
                           "outside the delay-primitive allowlist (pace "
                           "waits through core::wait_on)"},
      {"event-loop-blocking", "nothing reachable from the event-runtime "
                              "roots (EventFront shard loops) may hit a "
                              "blocking primitive"},
      {"lock-discipline", "no blocking call while a lock is held, no "
                          "self-deadlock, no ABBA cycle in the lock-order "
                          "graph"},
      {"hot-path-allocation", "nothing reachable from the encode->write "
                              "path may construct flat std::string / "
                              "std::vector<char> copies or call the copy "
                              "escape hatches"},
      {"guarded-field", "fields annotated sbqlint:guarded_by(mu) are only "
                        "accessed while mu is held, directly or via the "
                        "caller's held-lock set along call edges"},
      {"thread-affinity", "functions/fields annotated sbqlint:affine(root) "
                          "are only reachable from that thread root's "
                          "entry points"},
      {"bad-pragma", "sbqlint pragmas must name known rules, resolvable "
                     "sbqlint:edge endpoints, bindable guarded_by/affine "
                     "annotations, and known thread roots"},
  };
}

Config default_config() {
  Config config;
  // The DESIGN.md DAG: common is the substrate; xml/compress/pbio/net are
  // leaf codecs and transports over it; http rides net; soap/qos/wsdl are
  // description layers over the codecs; core composes everything; apps sit
  // on top of core. rpc is the standalone Sun RPC baseline.
  config.layering = {
      {"common", {}},
      {"xml", {"common"}},
      {"compress", {"common"}},
      {"pbio", {"common"}},
      {"net", {"common"}},
      {"http", {"common", "net"}},
      {"rpc", {"common", "net"}},
      {"soap", {"common", "xml", "pbio"}},
      {"qos", {"common", "pbio"}},
      {"wsdl", {"common", "xml", "pbio", "qos"}},
      {"core",
       {"common", "xml", "compress", "pbio", "net", "http", "soap", "qos",
        "wsdl"}},
      {"apps", {"common", "xml", "compress", "pbio", "qos", "core"}},
  };
  config.error_types = {
      "Error",        "ParseError",    "CodecError", "TransportError",
      "TimeoutError", "OverloadError", "RpcError",   "QosError",
      "UsageError",   "XmlError",
  };
  config.error_namespaces = {
      "sbq",  "common", "xml",  "compress", "pbio", "net",
      "http", "rpc",    "soap", "wsdl",     "qos",  "core",
  };
  config.cast_allowlist = {
      "src/common/bytes.h",        // the canonical char<->byte bridge
      "src/common/arena.h",        // allocator block copies
      "src/common/buffer_chain.cpp",  // owned-storage views + coalesce copy
      "src/net/tcp.cpp",           // sockaddr casts for the BSD socket API
      "src/net/poller.cpp",        // epoll_data / eventfd counter plumbing
      "src/pbio/detail.cpp",       // wire codec: scalar (de)serialization
      "src/pbio/encode.cpp",       // wire codec: native-layout encode
      "src/pbio/decode.cpp",       // wire codec: receiver-makes-right decode
      "src/pbio/plan.cpp",         // wire codec: compiled decode plans
  };
  config.clock_allowlist = {"src/common/clock.h"};
  config.clock_banned = {
      "system_clock", "steady_clock",  "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "localtime_r",   "gmtime",
      "gmtime_r",     "mktime",        "ctime",
      "asctime",      "strftime",      "ftime",
  };
  config.clock_banned_calls = {"time", "clock"};
  config.sleep_allowlist = {
      "src/core/client.cpp",      // core::wait_on, the blessed delay primitive
      "src/net/fault.cpp",        // kStall on a live stream really stalls
      "src/http/event_front.cpp", // poll fallback when no poller fd is ready
  };
  config.sleep_banned_calls = {"sleep_for", "sleep_until", "sleep", "usleep",
                               "nanosleep"};

  // --- graph rules -------------------------------------------------------
  // The event runtime: each EventFront shard thread drives a Poller; its
  // loop (and everything it reaches) must never block — handlers run on
  // the worker pool, which may.
  config.event_roots = {"EventFront::Impl::shard_loop"};
  // The repo's blocking surface, by name. Bodies of these primitives are
  // implementation detail (read_some's poll() IS the primitive); the rule
  // fires on reaching a call to one.
  config.blocking_calls = {
      "accept",     "connect",       "join",       "nanosleep",
      "read_exact", "read_request",  "read_response", "read_some",
      "round_trip", "sleep",         "sleep_for",  "sleep_until",
      "usleep",     "wait",          "wait_for",   "wait_on",
      "wait_until", "wait_us",       "write_all",  "write_chain",
  };
  // poller.wait(timeout) is the event loop's one blessed blocking point.
  config.blocking_exempt_receivers = {"poller"};
  // The zero-copy encode->write path: message serialization into a
  // BufferChain and the gather-write surfaces that drain it.
  config.hot_path_roots = {"serialize_to", "write_chain", "write_chain_some"};
  // Documented staging exceptions: the head of a message accumulates
  // small header fields into ONE owned std::string that is then MOVED
  // into the chain as a segment — one allocation, zero copies of the
  // body. The bodies of these functions may build that string.
  config.hot_path_allowlist = {
      "Request::serialize_to",
      "Response::serialize_to",
      "serialize_headers",
  };
  // Copy-by-design escape hatches, banned in call position on the path.
  config.hot_allocation_calls = {"coalesce", "append_copy", "to_string"};
  // Thread roots for the thread-affinity rule. Each names the entry
  // points that run on that thread family; sbqlint:affine(<root>)
  // annotations refer to these keys. The Server worker pool and the
  // EventFront worker pool share one root — both run handler code.
  config.affinity_roots = {
      {"event-shard", {"EventFront::Impl::shard_loop"}},
      {"worker", {"EventFront::Impl::worker_loop", "Server::worker_loop"}},
      {"acceptor", {"Server::accept_loop"}},
      {"client", {"ResilientStub::call"}},
  };
  return config;
}

std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& content,
                                    const Config& config) {
  const Scan scan = scan_source(content);
  std::vector<Finding> findings;
  run_line_rules(rel_path, scan, config, findings);
  sort_findings(findings);
  return findings;
}

std::vector<SourceFile> load_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  std::vector<std::string> paths;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path top = base / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") continue;
      paths.push_back(fs::relative(entry.path(), base).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    std::ifstream in(base / rel, std::ios::binary);
    if (!in) throw sbq::Error("sbqlint: cannot read " + (base / rel).string());
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{rel, ss.str()});
  }
  return files;
}

std::vector<Finding> analyze_program(const std::vector<SourceFile>& files,
                                     const Config& config,
                                     const std::set<std::string>& only_rules,
                                     RunStats* stats, ScanCache* cache) {
  std::vector<ProgramFile> program;
  program.reserve(files.size());
  std::vector<Finding> findings;
  std::size_t pragmas = 0;
  std::size_t edges = 0;
  for (const SourceFile& file : files) {
    ProgramFile entry;
    entry.path = file.path;
    if (cache == nullptr || !cache->load(file.content, entry.scan)) {
      entry.scan = scan_source(file.content);
      if (cache != nullptr) cache->store(file.content, entry.scan);
    }
    entry.in_graph = in_call_graph(file.path);
    if (entry.in_graph) {
      entry.graph = parse_file_graph(entry.path, entry.scan);
    }
    pragmas += entry.scan.pragmas.size();
    edges += entry.scan.edges.size();
    run_line_rules(entry.path, entry.scan, config, findings);
    program.push_back(std::move(entry));
  }
  GraphStats graph_stats;
  run_graph_rules(program, config, findings, &graph_stats);
  if (!only_rules.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return only_rules.count(f.rule) == 0;
                                  }),
                   findings.end());
  }
  sort_findings(findings);
  if (stats != nullptr) {
    stats->files_scanned = files.size();
    stats->functions = graph_stats.functions;
    stats->call_edges = graph_stats.call_edges;
    stats->pragmas_in_force = pragmas;
    stats->edge_pragmas = edges;
    stats->annotated_fields = graph_stats.annotated_fields;
    stats->affinity_roots = graph_stats.affinity_roots;
    stats->findings = findings.size();
    if (cache != nullptr) {
      stats->cache_hits = cache->hits();
      stats->cache_misses = cache->misses();
    }
    stats->rules_run.clear();
    for (const RuleInfo& rule : rules()) {
      if (only_rules.empty() || only_rules.count(rule.name) > 0) {
        stats->rules_run.push_back(rule.name);
      }
    }
  }
  return findings;
}

std::vector<Finding> analyze_tree(const std::string& root,
                                  const Config& config) {
  return analyze_program(load_tree(root), config);
}

}  // namespace sbq::lint
