// sbqlint — project-specific static analysis for the SOAP-binQ stack.
//
// The compiler cannot see the invariants the paper's results rest on:
// malformed wire input must surface as a clean sbq::Error (the contract
// tests/test_fuzz.cpp probes dynamically), timing must flow through the
// virtual clock / common/clock.h so the simulated LAN/ADSL numbers stay
// deterministic, and the subsystem DAG in DESIGN.md is what keeps
// refactors like the zero-copy pipeline tractable. sbqlint enforces them
// statically with a comment/string/raw-string-aware tokenizer — no
// compiler plugin, no external dependency, so it runs in tier-1 ctest.
//
// Rules (docs/static-analysis.md has the full rationale):
//   layering          #include edges must follow the subsystem DAG
//   no-raw-throw      every `throw` in src/ and tools/ constructs an
//                     sbq::Error subclass (or rethrows)
//   no-swallow        `catch (...)` must rethrow or convert
//   cast-confinement  reinterpret_cast / memcpy only in allowlisted
//                     codec/endian/syscall files
//   clock-discipline  no real-clock primitives outside src/common/clock.h
//
// Suppression: `// sbqlint:allow(rule[, rule...]): justification` on the
// offending line or the line directly above it.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sbq::lint {

/// One rule violation, printable as `file:line: rule: message`.
struct Finding {
  std::string file;  // repo-relative path, '/' separators
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

std::string format_finding(const Finding& finding);

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Every rule the analyzer knows, in reporting order (for --list-rules).
std::vector<RuleInfo> rules();

/// Project policy. default_config() encodes the SOAP-binQ DAG and
/// allowlists; tests build reduced configs to probe single rules.
struct Config {
  /// Subsystem DAG for files under src/: maps a subsystem (the first path
  /// component below src/, with everything under apps/ folded into "apps")
  /// to the subsystems it may #include. Self-includes are always allowed.
  std::map<std::string, std::set<std::string>> layering;

  /// Class names a `throw` may construct (the sbq::Error hierarchy).
  std::set<std::string> error_types;
  /// Namespace components allowed to qualify those names (sbq, xml, ...).
  std::set<std::string> error_namespaces;

  /// Repo-relative paths where reinterpret_cast / memcpy are legitimate:
  /// the byte-bridge substrate, wire codecs, and syscall wrappers.
  std::set<std::string> cast_allowlist;

  /// Repo-relative paths allowed to touch real clocks (src/common/clock.h).
  std::set<std::string> clock_allowlist;
  /// Identifiers banned anywhere outside the allowlist (system_clock, ...).
  std::set<std::string> clock_banned;
  /// Identifiers banned only in call position, i.e. followed by '('
  /// (`time`, `clock` — too common as plain names to ban outright).
  std::set<std::string> clock_banned_calls;

  /// Repo-relative paths under src/ or tools/ that may block the calling
  /// thread: the blessed delay primitives themselves (core::wait_on, the
  /// live-stream stall in net/fault, the event front's poll fallback).
  std::set<std::string> sleep_allowlist;
  /// Sleep primitives banned in call position under src/ and tools/ —
  /// anything pacing retries, probes, or hedges must route through
  /// core::wait_on so simulated schedules stay deterministic. Tests and
  /// bench drive real servers and may sleep freely.
  std::set<std::string> sleep_banned_calls;
};

/// The policy this repository is linted with (see docs/static-analysis.md).
Config default_config();

/// Analyzes one translation unit. `rel_path` is the repo-relative path
/// ('/' separators) — rule scopes key off it (src/, tools/, tests/,
/// bench/), so tests can feed inline snippets under synthetic paths.
std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& content,
                                    const Config& config);

/// Walks src/, tools/, tests/, and bench/ under `root` (every .h/.hpp/
/// .cpp/.cc file, sorted) and returns all findings. Throws sbq::Error if
/// a file cannot be read.
std::vector<Finding> analyze_tree(const std::string& root,
                                  const Config& config);

}  // namespace sbq::lint
