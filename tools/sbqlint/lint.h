// sbqlint — project-specific static analysis for the SOAP-binQ stack.
//
// The compiler cannot see the invariants the paper's results rest on:
// malformed wire input must surface as a clean sbq::Error (the contract
// tests/test_fuzz.cpp probes dynamically), timing must flow through the
// virtual clock / common/clock.h so the simulated LAN/ADSL numbers stay
// deterministic, and the subsystem DAG in DESIGN.md is what keeps
// refactors like the zero-copy pipeline tractable. sbqlint enforces them
// statically with a comment/string/raw-string-aware tokenizer — no
// compiler plugin, no external dependency, so it runs in tier-1 ctest.
//
// v2 adds a two-pass analyzer: pass 1 parses function definitions,
// calls, and lock acquisitions out of the token stream across src/ and
// tools/ into a cross-TU call graph (tools/sbqlint/callgraph.h); pass 2
// runs reachability rules over it.
//
// Rules (docs/static-analysis.md has the full rationale):
//   layering             #include edges must follow the subsystem DAG
//   no-raw-throw         every `throw` in src/ and tools/ constructs an
//                        sbq::Error subclass (or rethrows)
//   no-swallow           `catch (...)` must rethrow or convert
//   cast-confinement     reinterpret_cast / memcpy only in allowlisted
//                        codec/endian/syscall files
//   clock-discipline     no real-clock primitives outside src/common/clock.h
//   sleep-discipline     no direct thread sleeps outside the delay allowlist
//   event-loop-blocking  nothing reachable from the event-runtime roots
//                        may hit a blocking primitive
//   lock-discipline      no blocking call while a lock is held; no ABBA
//                        ordering over the lock graph; no self-deadlock
//   hot-path-allocation  nothing reachable from the encode->write path may
//                        construct flat std::string / std::vector<char>
//   guarded-field        fields annotated `sbqlint:guarded_by(mu)` are only
//                        accessed while `mu` is held, directly or via the
//                        caller's held-lock set along call-graph edges
//   thread-affinity      functions/fields annotated `sbqlint:affine(root)`
//                        are only reachable from that root's entry points
//   bad-pragma           pragmas must name known rules, resolvable edges,
//                        bindable annotations, and known thread roots
//
// Suppression: `// sbqlint:allow(rule[, rule...]): justification` on the
// offending line or the line directly above it; for graph rules, also on
// the definition line of the function the finding is attributed to.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sbq::lint {

/// One rule violation, printable as `file:line: rule: message`.
struct Finding {
  std::string file;  // repo-relative path, '/' separators
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

std::string format_finding(const Finding& finding);

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Every rule the analyzer knows, in reporting order (for --list-rules).
std::vector<RuleInfo> rules();

/// Project policy. default_config() encodes the SOAP-binQ DAG and
/// allowlists; tests build reduced configs to probe single rules.
struct Config {
  /// Subsystem DAG for files under src/: maps a subsystem (the first path
  /// component below src/, with everything under apps/ folded into "apps")
  /// to the subsystems it may #include. Self-includes are always allowed.
  std::map<std::string, std::set<std::string>> layering;

  /// Class names a `throw` may construct (the sbq::Error hierarchy).
  std::set<std::string> error_types;
  /// Namespace components allowed to qualify those names (sbq, xml, ...).
  std::set<std::string> error_namespaces;

  /// Repo-relative paths where reinterpret_cast / memcpy are legitimate:
  /// the byte-bridge substrate, wire codecs, and syscall wrappers.
  std::set<std::string> cast_allowlist;

  /// Repo-relative paths allowed to touch real clocks (src/common/clock.h).
  std::set<std::string> clock_allowlist;
  /// Identifiers banned anywhere outside the allowlist (system_clock, ...).
  std::set<std::string> clock_banned;
  /// Identifiers banned only in call position, i.e. followed by '('
  /// (`time`, `clock` — too common as plain names to ban outright).
  std::set<std::string> clock_banned_calls;

  /// Repo-relative paths under src/ or tools/ that may block the calling
  /// thread: the blessed delay primitives themselves (core::wait_on, the
  /// live-stream stall in net/fault, the event front's poll fallback).
  std::set<std::string> sleep_allowlist;
  /// Sleep primitives banned in call position under src/ and tools/ —
  /// anything pacing retries, probes, or hedges must route through
  /// core::wait_on so simulated schedules stay deterministic. Tests and
  /// bench drive real servers and may sleep freely.
  std::set<std::string> sleep_banned_calls;

  // --- graph rules (event-loop-blocking / lock-discipline /
  // --- hot-path-allocation); see docs/static-analysis.md "Graph rules".

  /// Event-runtime roots: qualified-name suffixes of the functions that
  /// drive a poller loop. Everything reachable from them must not block.
  std::set<std::string> event_roots;
  /// Blocking primitives, by callee name: the repo's blocking surface
  /// (reads, connect/accept, joins, waits, sleeps). Bodies of these
  /// primitives are implementation — the rule fires on calls TO them.
  std::set<std::string> blocking_calls;
  /// Receivers whose `.wait()` is the blessed block of the event loop
  /// (the poller: epoll_wait IS the event loop's one blocking point).
  std::set<std::string> blocking_exempt_receivers;

  /// Hot-path roots: qualified-name suffixes of the encode->write entry
  /// points. Everything reachable may not construct flat buffers.
  std::set<std::string> hot_path_roots;
  /// Functions (suffix patterns) whose own bodies may allocate — the
  /// documented staging/escape hatches. Traversal continues through them.
  std::set<std::string> hot_path_allowlist;
  /// Calls that copy by design (coalesce, append_copy, to_string):
  /// banned in call position on the hot path.
  std::set<std::string> hot_allocation_calls;

  /// Thread roots for the thread-affinity rule: root name (what
  /// `sbqlint:affine(<root>)` refers to) -> qualified-name suffixes of the
  /// entry points that run on that thread. An affine function or field
  /// reachable from a DIFFERENT root's entries is a violation; code
  /// reachable from no root at all (setup, teardown) is unchecked.
  std::map<std::string, std::set<std::string>> affinity_roots;
};

/// The policy this repository is linted with (see docs/static-analysis.md).
Config default_config();

/// One file handed to the analyzer: repo-relative path + contents.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Counters for the BENCH_lint.json process-quality summary.
struct RunStats {
  std::size_t files_scanned = 0;
  std::size_t functions = 0;       // call-graph nodes
  std::size_t call_edges = 0;      // resolved + pragma edges
  std::size_t pragmas_in_force = 0;  // sbqlint:allow occurrences
  std::size_t edge_pragmas = 0;      // sbqlint:edge occurrences
  std::size_t annotated_fields = 0;  // guarded_by/affine field declarations
  std::size_t affinity_roots = 0;    // thread roots with >= 1 entry node
  std::size_t findings = 0;
  std::size_t cache_hits = 0;    // scan-cache hits (0 without a cache)
  std::size_t cache_misses = 0;  // files tokenized from source
  std::vector<std::string> rules_run;
};

/// Analyzes one translation unit with the per-line rules only (the graph
/// rules need the whole program; see analyze_program). `rel_path` is the
/// repo-relative path ('/' separators) — rule scopes key off it (src/,
/// tools/, tests/, bench/), so tests can feed inline snippets under
/// synthetic paths.
std::vector<Finding> analyze_source(const std::string& rel_path,
                                    const std::string& content,
                                    const Config& config);

/// Loads every .h/.hpp/.cpp/.cc file under src/, tools/, tests/, and
/// bench/ below `root`, sorted by path. Throws sbq::Error on a file that
/// cannot be read.
std::vector<SourceFile> load_tree(const std::string& root);

class ScanCache;  // tools/sbqlint/cache.h

/// The full two-pass analysis: per-line rules on every file, then the
/// call-graph rules across the files under src/ and tools/. `only_rules`
/// filters the returned findings (empty = all rules). `stats`, when
/// non-null, receives the run counters. `cache`, when non-null, serves
/// tokenizer output for unchanged files by content hash (cache.h).
std::vector<Finding> analyze_program(const std::vector<SourceFile>& files,
                                     const Config& config,
                                     const std::set<std::string>& only_rules = {},
                                     RunStats* stats = nullptr,
                                     ScanCache* cache = nullptr);

/// load_tree + analyze_program with every rule enabled.
std::vector<Finding> analyze_tree(const std::string& root,
                                  const Config& config);

}  // namespace sbq::lint
