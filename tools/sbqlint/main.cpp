// sbqlint CLI.
//
// Usage:
//   sbqlint [--root DIR] [--list-rules] [--rule=NAME[,NAME...]]
//           [--format=text|json] [--summary FILE] [file...]
//
// With no file arguments, walks src/, tools/, tests/, and bench/ under
// --root (default: the current directory), runs the per-line rules on
// every file and the call-graph rules across src/ and tools/, and prints
// every finding as `file:line: rule: message` (or a JSON document with
// --format=json). File arguments are repo-relative paths to lint
// individually with the per-line rules only — the graph rules need the
// whole program. --rule filters the reported findings; --summary writes
// run counters (rules run, files scanned, findings, pragmas in force) as
// JSON for the BENCH_lint.json process-quality trajectory.
// Exits 0 when clean, 1 on findings, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "sbqlint/lint.h"

namespace {

constexpr const char* kUsage =
    "usage: sbqlint [--root DIR] [--list-rules] [--rule=NAME[,NAME...]]\n"
    "               [--format=text|json] [--summary FILE] [file...]\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sbq::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::set<std::string> parse_rule_list(const std::string& list) {
  std::set<std::string> known;
  for (const sbq::lint::RuleInfo& rule : sbq::lint::rules()) {
    known.insert(rule.name);
  }
  std::set<std::string> out;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    if (known.count(name) == 0) {
      throw sbq::UsageError("unknown rule '" + name +
                            "' (see --list-rules)");
    }
    out.insert(name);
  }
  if (out.empty()) throw sbq::UsageError("--rule needs at least one name");
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string stats_json(const sbq::lint::RunStats& stats) {
  std::ostringstream out;
  out << "{\"files_scanned\": " << stats.files_scanned
      << ", \"functions\": " << stats.functions
      << ", \"call_edges\": " << stats.call_edges
      << ", \"pragmas_in_force\": " << stats.pragmas_in_force
      << ", \"edge_pragmas\": " << stats.edge_pragmas
      << ", \"findings\": " << stats.findings << ", \"rules_run\": [";
  for (std::size_t i = 0; i < stats.rules_run.size(); ++i) {
    out << (i ? ", " : "") << '"' << stats.rules_run[i] << '"';
  }
  out << "]}";
  return out.str();
}

void print_json(const std::vector<sbq::lint::Finding>& findings,
                const sbq::lint::RunStats& stats) {
  std::cout << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const sbq::lint::Finding& f = findings[i];
    std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
              << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "" : "\n  ") << "],\n  \"stats\": "
            << stats_json(stats) << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool json = false;
  std::string summary_path;
  std::set<std::string> only_rules;
  std::vector<std::string> files;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--root") {
        if (i + 1 >= argc) throw sbq::UsageError("--root needs a value");
        root = argv[++i];
      } else if (arg == "--list-rules") {
        list_rules = true;
      } else if (arg.rfind("--rule=", 0) == 0) {
        const std::set<std::string> parsed =
            parse_rule_list(arg.substr(sizeof "--rule=" - 1));
        only_rules.insert(parsed.begin(), parsed.end());
      } else if (arg.rfind("--format=", 0) == 0) {
        const std::string format = arg.substr(sizeof "--format=" - 1);
        if (format == "json") json = true;
        else if (format == "text") json = false;
        else throw sbq::UsageError("unknown format '" + format + "'");
      } else if (arg == "--summary") {
        if (i + 1 >= argc) throw sbq::UsageError("--summary needs a value");
        summary_path = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw sbq::UsageError("unknown flag: " + arg);
      } else {
        files.push_back(arg);
      }
    }

    if (list_rules) {
      for (const sbq::lint::RuleInfo& rule : sbq::lint::rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }

    const sbq::lint::Config config = sbq::lint::default_config();
    std::vector<sbq::lint::Finding> findings;
    sbq::lint::RunStats stats;
    if (files.empty()) {
      findings = sbq::lint::analyze_program(sbq::lint::load_tree(root),
                                            config, only_rules, &stats);
    } else {
      for (const std::string& rel : files) {
        const std::vector<sbq::lint::Finding> file_findings =
            sbq::lint::analyze_source(rel, read_file(root + "/" + rel), config);
        for (const sbq::lint::Finding& f : file_findings) {
          if (only_rules.empty() || only_rules.count(f.rule) > 0) {
            findings.push_back(f);
          }
        }
      }
      stats.files_scanned = files.size();
      stats.findings = findings.size();
    }

    if (!summary_path.empty()) {
      std::ofstream out(summary_path, std::ios::binary);
      if (!out) throw sbq::UsageError("cannot write " + summary_path);
      out << stats_json(stats) << "\n";
    }

    if (json) {
      print_json(findings, stats);
    } else {
      for (const sbq::lint::Finding& finding : findings) {
        std::cout << sbq::lint::format_finding(finding) << "\n";
      }
    }
    if (!findings.empty()) {
      std::cerr << "sbqlint: " << findings.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  } catch (const sbq::UsageError& e) {
    std::cerr << "sbqlint: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const sbq::Error& e) {
    std::cerr << "sbqlint: " << e.what() << "\n";
    return 2;
  }
}
