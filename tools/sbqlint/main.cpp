// sbqlint CLI.
//
// Usage:
//   sbqlint [--root DIR] [--list-rules] [--rule=NAME[,NAME...]]
//           [--format=text|json|sarif] [--summary FILE] [--no-cache]
//           [file...]
//
// With no file arguments, walks src/, tools/, tests/, and bench/ under
// --root (default: the current directory), runs the per-line rules on
// every file and the call-graph rules across src/ and tools/, and prints
// every finding as `file:line: rule: message` (a JSON document with
// --format=json, a SARIF 2.1.0 log with --format=sarif for the GitHub
// code-scanning upload). File arguments are repo-relative paths to lint
// individually with the per-line rules only — the graph rules need the
// whole program. --rule filters the reported findings; --summary writes
// run counters (rules run, files scanned, findings, pragmas in force,
// annotated fields, cache hits/misses, sweep time) as JSON for the
// BENCH_lint.json process-quality trajectory. Tree sweeps memoize
// tokenizer output under <root>/build/sbqlint-cache keyed by content
// hash; --no-cache forces a cold re-tokenize.
// Exits 0 when clean, 1 on findings, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "sbqlint/cache.h"
#include "sbqlint/lint.h"

namespace {

constexpr const char* kUsage =
    "usage: sbqlint [--root DIR] [--list-rules] [--rule=NAME[,NAME...]]\n"
    "               [--format=text|json|sarif] [--summary FILE]\n"
    "               [--no-cache] [file...]\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sbq::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::set<std::string> parse_rule_list(const std::string& list) {
  std::set<std::string> known;
  for (const sbq::lint::RuleInfo& rule : sbq::lint::rules()) {
    known.insert(rule.name);
  }
  std::set<std::string> out;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    if (known.count(name) == 0) {
      throw sbq::UsageError("unknown rule '" + name +
                            "' (see --list-rules)");
    }
    out.insert(name);
  }
  if (out.empty()) throw sbq::UsageError("--rule needs at least one name");
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string stats_json(const sbq::lint::RunStats& stats, double sweep_ms) {
  std::ostringstream out;
  out << "{\"files_scanned\": " << stats.files_scanned
      << ", \"functions\": " << stats.functions
      << ", \"call_edges\": " << stats.call_edges
      << ", \"pragmas_in_force\": " << stats.pragmas_in_force
      << ", \"edge_pragmas\": " << stats.edge_pragmas
      << ", \"annotated_fields\": " << stats.annotated_fields
      << ", \"affinity_roots\": " << stats.affinity_roots
      << ", \"findings\": " << stats.findings
      << ", \"cache_hits\": " << stats.cache_hits
      << ", \"cache_misses\": " << stats.cache_misses
      << ", \"sweep_ms\": " << static_cast<long long>(sweep_ms)
      << ", \"rules_run\": [";
  for (std::size_t i = 0; i < stats.rules_run.size(); ++i) {
    out << (i ? ", " : "") << '"' << stats.rules_run[i] << '"';
  }
  out << "]}";
  return out.str();
}

void print_json(const std::vector<sbq::lint::Finding>& findings,
                const sbq::lint::RunStats& stats, double sweep_ms) {
  std::cout << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const sbq::lint::Finding& f = findings[i];
    std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
              << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << f.rule << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "" : "\n  ") << "],\n  \"stats\": "
            << stats_json(stats, sweep_ms) << "\n}\n";
}

/// SARIF 2.1.0, the schema github/codeql-action/upload-sarif ingests:
/// one run, the rule roster under tool.driver, one result per finding
/// with a physical location. Everything sbqlint reports is a build
/// gate, so results carry level "error".
void print_sarif(const std::vector<sbq::lint::Finding>& findings) {
  std::cout << "{\n"
            << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
               "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [{\n"
            << "    \"tool\": {\"driver\": {\n"
            << "      \"name\": \"sbqlint\",\n"
            << "      \"informationUri\": \"docs/static-analysis.md\",\n"
            << "      \"rules\": [";
  const std::vector<sbq::lint::RuleInfo> rules = sbq::lint::rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::cout << (i ? ",\n        " : "\n        ") << "{\"id\": \""
              << rules[i].name << "\", \"shortDescription\": {\"text\": \""
              << json_escape(rules[i].summary) << "\"}}";
  }
  std::cout << "\n      ]\n    }},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const sbq::lint::Finding& f = findings[i];
    std::cout << (i ? ",\n      " : "\n      ") << "{\"ruleId\": \"" << f.rule
              << "\", \"level\": \"error\", \"message\": {\"text\": \""
              << json_escape(f.message)
              << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \""
              << json_escape(f.file)
              << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  std::cout << (findings.empty() ? "" : "\n    ") << "]\n  }]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool json = false;
  bool sarif = false;
  bool use_cache = true;
  std::string summary_path;
  std::set<std::string> only_rules;
  std::vector<std::string> files;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--root") {
        if (i + 1 >= argc) throw sbq::UsageError("--root needs a value");
        root = argv[++i];
      } else if (arg == "--list-rules") {
        list_rules = true;
      } else if (arg.rfind("--rule=", 0) == 0) {
        const std::set<std::string> parsed =
            parse_rule_list(arg.substr(sizeof "--rule=" - 1));
        only_rules.insert(parsed.begin(), parsed.end());
      } else if (arg.rfind("--format=", 0) == 0) {
        const std::string format = arg.substr(sizeof "--format=" - 1);
        json = format == "json";
        sarif = format == "sarif";
        if (format != "json" && format != "sarif" && format != "text") {
          throw sbq::UsageError("unknown format '" + format + "'");
        }
      } else if (arg == "--no-cache") {
        use_cache = false;
      } else if (arg == "--summary") {
        if (i + 1 >= argc) throw sbq::UsageError("--summary needs a value");
        summary_path = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw sbq::UsageError("unknown flag: " + arg);
      } else {
        files.push_back(arg);
      }
    }

    if (list_rules) {
      for (const sbq::lint::RuleInfo& rule : sbq::lint::rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }

    const sbq::lint::Config config = sbq::lint::default_config();
    std::vector<sbq::lint::Finding> findings;
    sbq::lint::RunStats stats;
    const sbq::Stopwatch sweep;
    if (files.empty()) {
      sbq::lint::ScanCache cache(root + "/build/sbqlint-cache");
      findings = sbq::lint::analyze_program(sbq::lint::load_tree(root),
                                            config, only_rules, &stats,
                                            use_cache ? &cache : nullptr);
    } else {
      for (const std::string& rel : files) {
        const std::vector<sbq::lint::Finding> file_findings =
            sbq::lint::analyze_source(rel, read_file(root + "/" + rel), config);
        for (const sbq::lint::Finding& f : file_findings) {
          if (only_rules.empty() || only_rules.count(f.rule) > 0) {
            findings.push_back(f);
          }
        }
      }
      stats.files_scanned = files.size();
      stats.findings = findings.size();
    }
    const double sweep_ms = sweep.elapsed_us() / 1000.0;

    if (!summary_path.empty()) {
      std::ofstream out(summary_path, std::ios::binary);
      if (!out) throw sbq::UsageError("cannot write " + summary_path);
      out << stats_json(stats, sweep_ms) << "\n";
    }

    if (sarif) {
      print_sarif(findings);
    } else if (json) {
      print_json(findings, stats, sweep_ms);
    } else {
      for (const sbq::lint::Finding& finding : findings) {
        std::cout << sbq::lint::format_finding(finding) << "\n";
      }
    }
    if (!findings.empty()) {
      std::cerr << "sbqlint: " << findings.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  } catch (const sbq::UsageError& e) {
    std::cerr << "sbqlint: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const sbq::Error& e) {
    std::cerr << "sbqlint: " << e.what() << "\n";
    return 2;
  }
}
