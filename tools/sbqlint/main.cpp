// sbqlint CLI.
//
// Usage:
//   sbqlint [--root DIR] [--list-rules] [file...]
//
// With no file arguments, walks src/, tools/, tests/, and bench/ under
// --root (default: the current directory) and prints every finding as
// `file:line: rule: message`. File arguments are repo-relative paths to
// lint individually. Exits 0 when clean, 1 on findings, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "sbqlint/lint.h"

namespace {

constexpr const char* kUsage =
    "usage: sbqlint [--root DIR] [--list-rules] [file...]\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sbq::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  std::vector<std::string> files;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--root") {
        if (i + 1 >= argc) throw sbq::UsageError("--root needs a value");
        root = argv[++i];
      } else if (arg == "--list-rules") {
        list_rules = true;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw sbq::UsageError("unknown flag: " + arg);
      } else {
        files.push_back(arg);
      }
    }

    if (list_rules) {
      for (const sbq::lint::RuleInfo& rule : sbq::lint::rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }

    const sbq::lint::Config config = sbq::lint::default_config();
    std::vector<sbq::lint::Finding> findings;
    if (files.empty()) {
      findings = sbq::lint::analyze_tree(root, config);
    } else {
      for (const std::string& rel : files) {
        const std::vector<sbq::lint::Finding> file_findings =
            sbq::lint::analyze_source(rel, read_file(root + "/" + rel), config);
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
      }
    }
    for (const sbq::lint::Finding& finding : findings) {
      std::cout << sbq::lint::format_finding(finding) << "\n";
    }
    if (!findings.empty()) {
      std::cerr << "sbqlint: " << findings.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  } catch (const sbq::UsageError& e) {
    std::cerr << "sbqlint: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const sbq::Error& e) {
    std::cerr << "sbqlint: " << e.what() << "\n";
    return 2;
  }
}
