#include "sbqlint/tokenizer.h"

#include <sstream>

namespace sbq::lint {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

/// A pragma must BE the comment, not be mentioned by one: the marker has
/// to open the comment text, after the `//`/`*` decoration. Prose citing
/// a pragma form mid-sentence, and doc examples quoting a `// sbqlint:`
/// line inside another comment (a second delimiter run), never match.
/// Returns the offset just past the marker, or npos.
std::size_t pragma_start(const std::string& comment,
                         const std::string& marker) {
  std::size_t i = comment.find_first_not_of(" \t");
  if (i == std::string::npos) return std::string::npos;
  while (i < comment.size() && (comment[i] == '/' || comment[i] == '*')) ++i;
  while (i < comment.size() && (comment[i] == ' ' || comment[i] == '\t')) ++i;
  if (comment.compare(i, marker.size(), marker) != 0) return std::string::npos;
  return i + marker.size();
}

/// Registers a comment of the form `sbqlint:allow(rule[, rule...]): why`.
void scan_allow_pragmas(const std::string& comment, int line, Scan& scan) {
  const std::size_t pos = pragma_start(comment, "sbqlint:allow(");
  if (pos == std::string::npos) return;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  AllowPragma pragma{line, {}};
  std::stringstream list(comment.substr(pos, close - pos));
  std::string rule;
  while (std::getline(list, rule, ',')) {
    const std::string name = trim(rule);
    if (name.empty()) continue;
    pragma.rules.push_back(name);
    scan.allowances[line].insert(name);
    scan.allowances[line + 1].insert(name);
  }
  scan.pragmas.push_back(std::move(pragma));
}

/// Registers a comment of the form `sbqlint:edge(caller -> callee)`.
void scan_edge_pragmas(const std::string& comment, int line, Scan& scan) {
  const std::size_t pos = pragma_start(comment, "sbqlint:edge(");
  if (pos == std::string::npos) return;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  const std::string body = comment.substr(pos, close - pos);
  EdgePragma edge{line, {}, {}, false};
  const std::size_t arrow = body.find("->");
  if (arrow == std::string::npos) {
    edge.malformed = true;
  } else {
    edge.caller = trim(body.substr(0, arrow));
    edge.callee = trim(body.substr(arrow + 2));
    edge.malformed = edge.caller.empty() || edge.callee.empty();
  }
  scan.edges.push_back(std::move(edge));
}

/// Registers `sbqlint:guarded_by(mutex)` / `sbqlint:affine(root)`
/// annotations. The argument is a single member/root name; anything else
/// (empty, spaces, a qualified path) is kept malformed for bad-pragma.
void scan_field_annotation(const std::string& comment, int line,
                           const std::string& marker,
                           FieldAnnotation::Kind kind, Scan& scan) {
  const std::size_t pos = pragma_start(comment, marker);
  if (pos == std::string::npos) return;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  FieldAnnotation ann{kind, line, trim(comment.substr(pos, close - pos)), false};
  ann.malformed = ann.arg.empty() ||
                  ann.arg.find_first_of(" \t:") != std::string::npos;
  scan.annotations.push_back(std::move(ann));
}

void scan_pragmas(const std::string& comment, int line, Scan& scan) {
  scan_allow_pragmas(comment, line, scan);
  scan_edge_pragmas(comment, line, scan);
  scan_field_annotation(comment, line, "sbqlint:guarded_by(",
                        FieldAnnotation::Kind::kGuardedBy, scan);
  scan_field_annotation(comment, line, "sbqlint:affine(",
                        FieldAnnotation::Kind::kAffine, scan);
}

class Lexer {
 public:
  Lexer(const std::string& src, Scan& out) : src_(src), out_(out) {}

  void run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
      } else if (is_ident_start(c)) {
        identifier();
      } else {
        punct();
      }
    }
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start = line_;
    std::size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) end = src_.size();
    scan_pragmas(src_.substr(pos_, end - pos_), start, out_);
    pos_ = end;
  }

  void block_comment() {
    const int start = line_;
    pos_ += 2;
    const std::size_t end = src_.find("*/", pos_);
    const std::size_t stop = end == std::string::npos ? src_.size() : end;
    scan_pragmas(src_.substr(pos_, stop - pos_), start, out_);
    for (std::size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? src_.size() : end + 2;
  }

  /// Consumes a `"..."` literal with escapes; pos_ is at the opening quote.
  void string_literal() {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // unterminated; keep line counts honest
      ++pos_;
      if (c == '"') break;
    }
    emit(Token::Kind::kLiteral, "\"\"", start);
  }

  void char_literal() {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') ++line_;
      ++pos_;
      if (c == '\'') break;
    }
    emit(Token::Kind::kLiteral, "''", start);
  }

  /// Consumes `R"delim( ... )delim"`; pos_ is at the opening quote.
  void raw_string_literal() {
    const int start = line_;
    ++pos_;  // past '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    ++pos_;  // past '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, pos_);
    const std::size_t stop = end == std::string::npos ? src_.size() : end;
    for (std::size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? src_.size() : end + closer.size();
    emit(Token::Kind::kLiteral, "\"\"", start);
  }

  void number() {
    const int start = line_;
    const std::size_t begin = pos_;
    // pp-number: digits, idents, quotes as separators, exponent signs.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && is_ident_char(peek(1))) {
        pos_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && pos_ > begin &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    emit(Token::Kind::kNumber, src_.substr(begin, pos_ - begin), start);
  }

  void identifier() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text = src_.substr(begin, pos_ - begin);
    // Encoding prefixes glue onto the following literal.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
          text == "u8R") {
        raw_string_literal();
        return;
      }
      if (text == "L" || text == "u" || text == "U" || text == "u8") {
        string_literal();
        return;
      }
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      char_literal();
      return;
    }
    emit(Token::Kind::kIdent, std::move(text), start);
  }

  void punct() {
    const int start = line_;
    if (src_[pos_] == ':' && peek(1) == ':') {
      emit(Token::Kind::kPunct, "::", start);
      pos_ += 2;
      return;
    }
    if (src_[pos_] == '.' && peek(1) == '.' && peek(2) == '.') {
      emit(Token::Kind::kPunct, "...", start);
      pos_ += 3;
      return;
    }
    emit(Token::Kind::kPunct, std::string(1, src_[pos_]), start);
    ++pos_;
  }

  /// Consumes a whole preprocessor directive (with backslash continuations
  /// and trailing comments), recording #include targets. Directive bodies
  /// produce no tokens — a #define is policy for clang-tidy, not for us.
  void preprocessor_line() {
    const int start = line_;
    std::string directive;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!directive.empty() && directive.back() == '\\') {
          directive.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;  // newline itself handled by the main loop
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      directive += c;
      ++pos_;
    }
    parse_include(directive, start);
    at_line_start_ = false;
  }

  void parse_include(const std::string& directive, int line) {
    std::size_t i = 1;  // past '#'
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
    static const std::string kWord = "include";
    if (directive.compare(i, kWord.size(), kWord) != 0) return;
    i += kWord.size();
    while (i < directive.size() && (directive[i] == ' ' || directive[i] == '\t')) ++i;
    if (i >= directive.size()) return;
    const char open = directive[i];
    const char close = open == '<' ? '>' : '"';
    if (open != '<' && open != '"') return;
    const std::size_t end = directive.find(close, i + 1);
    if (end == std::string::npos) return;
    out_.includes.push_back(IncludeDirective{
        directive.substr(i + 1, end - i - 1), open == '<', line});
  }

  const std::string& src_;
  Scan& out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

Scan scan_source(const std::string& content) {
  Scan scan;
  Lexer(content, scan).run();
  return scan;
}

}  // namespace sbq::lint
