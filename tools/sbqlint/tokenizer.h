// sbqlint tokenizer — the shared lexical substrate for every rule.
//
// Comments, string/char literals (including raw strings and encoding
// prefixes), and preprocessor lines never produce tokens, so a banned
// identifier inside a string or comment can never fire a rule. The scan
// also records the two pragma forms rules consume:
//
//   // sbqlint:allow(rule[, rule...]): justification
//       suppresses findings on the pragma's own line and the next line
//       (and, for graph rules, on a whole function when placed on its
//       definition line — see callgraph.h).
//
//   // sbqlint:edge(caller -> callee)
//       declares a call edge the parser cannot see (function pointers,
//       callbacks registered elsewhere). Both sides are qualified-name
//       suffixes, resolved like ordinary calls.
//
//   // sbqlint:guarded_by(mutex)
//       on (or above) a class field declaration: every access to the field
//       must hold the named mutex member (guarded-field rule).
//
//   // sbqlint:affine(root)
//       on (or above) a field or function: it belongs to the named thread
//       root and may only be reached from that root (thread-affinity rule).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sbq::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kLiteral };
  Kind kind;
  std::string text;
  int line;
};

struct IncludeDirective {
  std::string path;
  bool angled;
  int line;
};

/// One `sbqlint:allow(...)` occurrence, kept raw so unknown rule names
/// can be reported (bad-pragma) and pragmas-in-force can be counted.
struct AllowPragma {
  int line;
  std::vector<std::string> rules;
};

/// One `sbqlint:edge(caller -> callee)` occurrence. A malformed pragma
/// (missing `->`, empty side) keeps its text for the bad-pragma report.
struct EdgePragma {
  int line;
  std::string caller;
  std::string callee;
  bool malformed = false;
};

/// One `sbqlint:guarded_by(mutex)` or `sbqlint:affine(root)` annotation.
/// Like an allow pragma it covers its own line and the next, so it can
/// trail the declaration or sit above it. The parser binds it to the field
/// (or, for affine, function) declared there; an annotation that binds to
/// nothing — or with an empty argument — is reported by bad-pragma.
struct FieldAnnotation {
  enum class Kind { kGuardedBy, kAffine };
  Kind kind;
  int line;
  std::string arg;  // mutex member name / affinity root name
  bool malformed = false;
};

struct Scan {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rules suppressed on that line (a pragma covers its own line
  /// and the next, so it can trail the offending code or sit above it).
  std::map<int, std::set<std::string>> allowances;
  std::vector<AllowPragma> pragmas;
  std::vector<EdgePragma> edges;
  std::vector<FieldAnnotation> annotations;
};

/// Lexes one translation unit into tokens, includes, and pragmas.
Scan scan_source(const std::string& content);

}  // namespace sbq::lint
