// soapcall — generic command-line SOAP / SOAP-bin client.
//
// Fetches (or reads) a service's WSDL, compiles it, invokes one operation
// with parameters given as an XML document, and prints the result element
// as XML. Works against any ServiceRuntime endpoint in the three wire
// formats.
//
// Usage:
//   soapcall --wsdl <file-or-'fetch'> --host H --port P --operation OP
//            [--params <xml-file>] [--params-inline '<params>...</params>']
//            [--wire bin|xml|lz] [--target /path]
//
// When --wsdl fetch is given, the tool GETs "<target>?wsdl" from the
// endpoint first (the 2004 advertisement convention).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "core/client.h"
#include "core/transports.h"
#include "http/client.h"
#include "net/tcp.h"
#include "wsdl/wsdl.h"

namespace {

constexpr const char* kUsage =
    "usage: soapcall --wsdl <file-or-'fetch'> --host H --port P"
    " --operation OP\n"
    "                [--params <xml-file>] [--params-inline '<params>...']\n"
    "                [--wire bin|xml|lz] [--target /path]\n";

struct Options {
  std::string wsdl = "fetch";
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  std::string operation;
  std::string params_xml;
  std::string target = "/";
  sbq::core::WireFormat wire = sbq::core::WireFormat::kBinary;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sbq::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Options parse_args(int argc, char** argv) {
  Options opts;
  auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw sbq::UsageError(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--wsdl") {
      opts.wsdl = need_value(i, "--wsdl");
    } else if (flag == "--host") {
      opts.host = need_value(i, "--host");
    } else if (flag == "--port") {
      const std::string value = need_value(i, "--port");
      int port = 0;
      try {
        std::size_t consumed = 0;
        port = std::stoi(value, &consumed);
        if (consumed != value.size()) port = -1;
      } catch (const std::exception&) {
        port = -1;
      }
      if (port < 1 || port > 65535) {
        throw sbq::UsageError("--port must be a number in 1..65535, got '" +
                              value + "'");
      }
      opts.port = static_cast<std::uint16_t>(port);
    } else if (flag == "--operation") {
      opts.operation = need_value(i, "--operation");
    } else if (flag == "--params") {
      opts.params_xml = read_file(need_value(i, "--params"));
    } else if (flag == "--params-inline") {
      opts.params_xml = need_value(i, "--params-inline");
    } else if (flag == "--target") {
      opts.target = need_value(i, "--target");
    } else if (flag == "--wire") {
      const std::string w = need_value(i, "--wire");
      if (w == "bin") opts.wire = sbq::core::WireFormat::kBinary;
      else if (w == "xml") opts.wire = sbq::core::WireFormat::kXml;
      else if (w == "lz") opts.wire = sbq::core::WireFormat::kCompressedXml;
      else throw sbq::UsageError("--wire must be bin|xml|lz");
    } else {
      throw sbq::UsageError("unknown flag: " + flag);
    }
  }
  if (opts.operation.empty()) throw sbq::UsageError("--operation is required");
  return opts;
}

std::string fetch_wsdl(const Options& opts) {
  auto stream = sbq::net::TcpStream::connect(opts.host, opts.port);
  sbq::http::Client http(*stream);
  sbq::http::Request get;
  get.method = "GET";
  get.target = opts.target + "?wsdl";
  const sbq::http::Response resp = http.round_trip(get);
  if (resp.status != 200) {
    throw sbq::TransportError("WSDL fetch failed: HTTP " +
                              std::to_string(resp.status));
  }
  return resp.body_string();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);

    const std::string wsdl_xml =
        opts.wsdl == "fetch" ? fetch_wsdl(opts) : read_file(opts.wsdl);
    const sbq::wsdl::ServiceDesc service = sbq::wsdl::parse_wsdl(wsdl_xml);
    const sbq::wsdl::OperationDesc& op = service.required_operation(opts.operation);
    std::fprintf(stderr, "soapcall: %s(%s) -> %s\n", op.name.c_str(),
                 op.input->canonical().c_str(), op.output->canonical().c_str());

    auto format_server = std::make_shared<sbq::pbio::FormatServer>();
    auto clock = std::make_shared<sbq::net::SteadyTimeSource>();
    auto stream = sbq::net::TcpStream::connect(opts.host, opts.port);
    sbq::core::HttpTransport transport(*stream);
    sbq::core::ClientStub client(transport, opts.wire, service, format_server,
                                 clock);

    const std::string params =
        opts.params_xml.empty()
            ? "<params/>"  // operations with no required fields
            : opts.params_xml;
    const std::string result = client.call_xml(opts.operation, params);
    std::printf("%s\n", result.c_str());
    std::fprintf(stderr,
                 "soapcall: sent %llu B, received %llu B, rtt %.0f us\n",
                 static_cast<unsigned long long>(client.stats().bytes_sent),
                 static_cast<unsigned long long>(client.stats().bytes_received),
                 client.last_rtt_us());
    return 0;
  } catch (const sbq::UsageError& e) {
    std::fprintf(stderr, "soapcall: %s\n%s", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soapcall: %s\n", e.what());
    return 1;
  }
}
