// wsdlc — the WSDL compiler command-line tool.
//
// Usage: wsdlc <service.wsdl> [output-dir]
//
// Reads a WSDL document, compiles its complexTypes to PBIO formats, and
// writes <service>_stubs.h / <service>_stubs.cpp with native structs, typed
// client stubs, and a server skeleton (see src/wsdl/stubgen.h).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "wsdl/stubgen.h"
#include "wsdl/wsdl.h"

namespace {

constexpr const char* kUsage = "usage: wsdlc <service.wsdl> [output-dir]\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw sbq::UsageError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw sbq::UsageError("cannot write " + path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::cerr << kUsage;
    return 2;
  }
  try {
    const std::string wsdl_xml = read_file(argv[1]);
    const sbq::wsdl::ServiceDesc service = sbq::wsdl::parse_wsdl(wsdl_xml);
    const sbq::wsdl::StubFiles stubs = sbq::wsdl::generate_stubs(service);

    const std::string dir = argc == 3 ? std::string(argv[2]) + "/" : std::string{};
    const std::string base = dir + sbq::wsdl::sanitize_identifier(service.name);
    write_file(base + "_stubs.h", stubs.header);
    write_file(base + "_stubs.cpp", stubs.support);

    std::cout << "service:    " << service.name << "\n";
    std::cout << "operations: " << service.operations.size() << "\n";
    for (const auto& op : service.operations) {
      std::cout << "  " << op.name << "(" << op.input->canonical() << ") -> "
                << op.output->canonical() << "\n";
    }
    std::cout << "wrote " << base << "_stubs.h, " << base << "_stubs.cpp\n";
    return 0;
  } catch (const sbq::UsageError& e) {
    std::cerr << "wsdlc: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "wsdlc: " << e.what() << "\n";
    return 1;
  }
}
